//! Real multi-worker data parallelism with the phased gradient exchange —
//! the executable analogue of paper Sec. III-G, built on threads and
//! crossbeam channels instead of MPI.
//!
//! Each worker trains its out-of-core replica on a shard of the global
//! batch. Gradients ship **by exchange group** ([`ExchangeSchedule`]): as
//! a group's last block finishes its backward pass, the worker sends the
//! group's gradients to the aggregator ("the CPU side") and *keeps
//! computing* — the aggregation of already-shipped groups overlaps the
//! remaining backward/swap work, exactly the overlap the paper's phased
//! exchange buys. The averaged gradients are installed before the weight
//! update, so every replica applies identical averages and replicas stay
//! bit-identical.
//!
//! The group shapes come from `karma_net::PhasedExchange` (MG-WFBP
//! merging) via the plan→runtime bridge, or from the [`ExchangeSchedule`]
//! constructors directly ([`ExchangeSchedule::per_block`] reproduces the
//! original one-message-per-block protocol, [`ExchangeSchedule::bulk`]
//! the naive single-AllReduce baseline).

use crossbeam::channel::{unbounded, Receiver, Sender};
use karma_tensor::layers::ParamGrads;
use karma_tensor::{Gradients, Sequential, SyntheticDataset, Tensor};
use serde::{Deserialize, Serialize};

use crate::exec::{OocExecutor, OocStats};

/// The grouped gradient-exchange shape for one training step: which
/// blocks ship together, in launch order. This is the runtime mirror of
/// `karma_core::bridge::DistSchedule` (kept free of planner types so the
/// parity-critical execution path stays independent of the analysis
/// stack, like `BlockPolicy` mirrors `LoweredPolicy`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExchangeSchedule {
    /// Member blocks per group: contiguous, descending within each group
    /// (backward completion order) and across groups, covering every
    /// block exactly once.
    groups: Vec<Vec<usize>>,
    n_blocks: usize,
}

impl ExchangeSchedule {
    /// Build a schedule over `n_blocks` blocks, validating that `groups`
    /// partition them in backward-completion order (descending, first
    /// group starts at the last block). Panics on malformed groups, like
    /// the executor's own schedule setters.
    pub fn new(groups: Vec<Vec<usize>>, n_blocks: usize) -> Self {
        let flat: Vec<usize> = groups.iter().flatten().copied().collect();
        assert_eq!(flat.len(), n_blocks, "groups must cover every block once");
        assert!(
            flat.windows(2).all(|w| w[0] == w[1] + 1),
            "groups must list blocks in contiguous descending order"
        );
        assert_eq!(
            flat.first().copied(),
            n_blocks.checked_sub(1),
            "first group must start at the last block"
        );
        ExchangeSchedule { groups, n_blocks }
    }

    /// One group per block — the fully eager, un-merged protocol (what
    /// [`train_data_parallel`] runs).
    pub fn per_block(n_blocks: usize) -> Self {
        ExchangeSchedule::new((0..n_blocks).rev().map(|b| vec![b]).collect(), n_blocks)
    }

    /// A single group holding every block — the bulk-AllReduce baseline
    /// with no compute/communication overlap.
    pub fn bulk(n_blocks: usize) -> Self {
        ExchangeSchedule::new(vec![(0..n_blocks).rev().collect()], n_blocks)
    }

    /// Member blocks per group, launch order.
    pub fn groups(&self) -> &[Vec<usize>] {
        &self.groups
    }

    /// Number of groups (= exchange messages per worker per step).
    pub fn n_groups(&self) -> usize {
        self.groups.len()
    }

    /// Number of blocks covered.
    pub fn n_blocks(&self) -> usize {
        self.n_blocks
    }

    /// The group's *gate*: its lowest block, whose backward finishes
    /// last and launches the group's exchange.
    pub fn gate(&self, group: usize) -> usize {
        *self.groups[group].last().expect("groups are non-empty")
    }
}

/// Outcome of a data-parallel training run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DataParallelReport {
    /// Mean worker loss per step.
    pub losses: Vec<f32>,
    /// Final parameter snapshot (identical across replicas).
    pub final_snapshot: Vec<f32>,
    /// Aggregate swap traffic across workers and steps.
    pub swapped_bytes: usize,
    /// Aggregate recomputed layers across workers and steps.
    pub recomputed_layers: usize,
    /// Highest per-worker near-memory residency across workers and steps
    /// — replicas run the same schedule on same-shaped shards, so this
    /// must equal the single-worker executed peak (and the bridge's
    /// residency replay): distributed lowering inherits the boundary
    /// eviction contract unchanged.
    pub peak_near_bytes: usize,
    /// Highest per-worker residency in each far-memory tier across
    /// workers and steps (elementwise max, fastest tier first) — the
    /// distributed analogue of [`crate::OocStats::peak_tier_bytes`], and
    /// what each level of the offload stack must provision per replica.
    pub peak_tier_bytes: Vec<usize>,
    /// Gradient-exchange messages (one per group per worker per step).
    pub exchange_messages: usize,
    /// Total gradient payload shipped worker→aggregator, across workers
    /// and steps.
    pub exchanged_bytes: usize,
    /// Payload bytes of one worker's message per group, in launch order
    /// (identical for every worker and step: replicas share shapes).
    pub group_bytes: Vec<usize>,
}

/// A planned worker failure inside one training step: the worker at
/// `rank` (its position in the pool *at that step*) dies after shipping
/// `groups_shipped` exchange groups of step `step`. `groups_shipped = 0`
/// kills it before its first message of the step; a value at or above the
/// schedule's group count means it dies only after shipping everything
/// (its replica still leaves the pool, but every group keeps its
/// contribution).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkerFailure {
    /// Step index (relative to the start of the run) the failure hits.
    pub step: usize,
    /// Rank in the pool at that step (after earlier failures re-shard).
    pub rank: usize,
    /// Exchange groups of that step shipped before dying, in launch order.
    pub groups_shipped: usize,
}

/// A static schedule of per-worker, per-step failures — the
/// fault-injection hook of [`train_churn`].
///
/// The plan being static is what makes mid-exchange failure handling
/// deterministic: every participant (and the sequential reference)
/// derives the same per-group contributor sets from it up front, instead
/// of racing on message arrival order. This models a membership protocol
/// that reaches agreement on the failed rank before the survivors commit
/// the step — the same role MPI-ULFM's `shrink` plays in the recovery the
/// paper sketches for its out-of-core data parallelism (Sec. II-B).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPlan {
    failures: Vec<WorkerFailure>,
}

impl FaultPlan {
    /// The empty plan: no failures, [`train_churn`] degenerates to
    /// [`train`].
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Build a plan, rejecting two failures of the same rank in the same
    /// step (one worker cannot die twice).
    pub fn new(failures: Vec<WorkerFailure>) -> Self {
        for (i, f) in failures.iter().enumerate() {
            assert!(
                !failures[..i]
                    .iter()
                    .any(|g| g.step == f.step && g.rank == f.rank),
                "duplicate failure for rank {} at step {}",
                f.rank,
                f.step
            );
        }
        FaultPlan { failures }
    }

    /// True when the plan schedules no failures.
    pub fn is_empty(&self) -> bool {
        self.failures.is_empty()
    }

    /// All scheduled failures.
    pub fn failures(&self) -> &[WorkerFailure] {
        &self.failures
    }

    /// Failures hitting `step`, as `(rank, groups_shipped)` sorted by
    /// rank.
    pub fn at_step(&self, step: usize) -> Vec<(usize, usize)> {
        let mut hits: Vec<(usize, usize)> = self
            .failures
            .iter()
            .filter(|f| f.step == step)
            .map(|f| (f.rank, f.groups_shipped))
            .collect();
        hits.sort_unstable();
        hits
    }
}

/// The batch-window slice of one [`train_churn`] call: where in the
/// dataset it starts and how it shards.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChurnConfig {
    /// Sample offset of the first step's global batch (the data cursor a
    /// checkpoint restores).
    pub offset: usize,
    /// Samples per worker per step.
    pub per_worker: usize,
    /// SGD learning rate.
    pub lr: f32,
    /// Steps to run.
    pub steps: usize,
}

/// Outcome of a fault-injected data-parallel run ([`train_churn`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChurnReport {
    /// Mean participant loss per step (dying workers' shard losses count:
    /// they computed them before dying).
    pub losses: Vec<f32>,
    /// Pool size at each step's start.
    pub pool_sizes: Vec<usize>,
    /// Final parameters (identical across surviving replicas).
    pub final_snapshot: Vec<f32>,
    /// Aggregate swap traffic across workers and steps.
    pub swapped_bytes: usize,
    /// Aggregate recomputed layers across workers and steps.
    pub recomputed_layers: usize,
    /// Highest per-worker near-memory residency (see
    /// [`DataParallelReport::peak_near_bytes`]).
    pub peak_near_bytes: usize,
    /// Highest per-worker residency per far-memory tier (see
    /// [`DataParallelReport::peak_tier_bytes`]).
    pub peak_tier_bytes: Vec<usize>,
    /// Gradient-exchange messages actually shipped (a dying worker's
    /// unsent groups are missing from this count).
    pub exchange_messages: usize,
    /// Total gradient payload shipped worker→aggregator.
    pub exchanged_bytes: usize,
    /// Payload bytes of one worker's message per group, in launch order.
    pub group_bytes: Vec<usize>,
    /// Exchange groups that lost a scheduled contribution and fell back
    /// to survivor-only averaging (one count per missing contribution).
    pub aborted_groups: usize,
    /// Exchange groups that kept a dying worker's already-shipped
    /// contribution (one count per kept contribution).
    pub completed_with_dead: usize,
    /// Samples the run consumed (dying workers' shards included — their
    /// microbatches are lost to the failure, as in a real run).
    pub samples_consumed: usize,
}

type GroupMsg = (usize, usize, Vec<ParamGrads>); // (rank, group, grads)
type ReplyChannel = (Sender<Vec<ParamGrads>>, Receiver<Vec<ParamGrads>>);

/// Layer span `[start, end)` covered by `group` (contiguous descending
/// blocks ⇒ contiguous layers from the gate's first to the lead's last).
fn group_span(
    xchg: &ExchangeSchedule,
    group: usize,
    boundaries: &[usize],
    n_layers: usize,
) -> (usize, usize) {
    let blocks = &xchg.groups()[group];
    let lead = blocks[0];
    let gate = *blocks.last().unwrap();
    let start = boundaries[gate];
    let end = boundaries.get(lead + 1).copied().unwrap_or(n_layers);
    (start, end)
}

/// Train `nets` (identical replicas) data-parallel for `steps` steps with
/// the grouped phased gradient exchange.
///
/// Worker `r` consumes shard `r` of each global batch window:
/// `data[start + step*global .. ]` split into `nets.len()` shards of
/// `per_worker` samples. As each exchange group's gate block finishes its
/// backward, the worker ships the group's gradients and continues; the
/// averaged result is installed before the SGD update, so replicas end
/// every step bit-identical (asserted). `nets` are left at the final
/// parameters.
///
/// ```
/// use karma_runtime::dp::{train, ExchangeSchedule};
/// use karma_runtime::exec::{BlockPolicy, OocExecutor};
/// use karma_tensor::{small_cnn, SyntheticDataset};
///
/// let data = SyntheticDataset::classification(64, 1, 16, 4, 33);
/// let mut nets: Vec<_> = (0..2).map(|_| small_cnn(4, 77)).collect();
/// let exec = OocExecutor::new(
///     vec![0, 3, 6],
///     vec![BlockPolicy::Swap, BlockPolicy::Recompute, BlockPolicy::Resident],
///     usize::MAX / 2,
///     nets[0].len(),
/// );
/// // Blocks {2, 1} exchange together as soon as B(1) lands, overlapping
/// // B(0); block 0 ships last.
/// let xchg = ExchangeSchedule::new(vec![vec![2, 1], vec![0]], 3);
/// let report = train(&mut nets, &exec, &xchg, &data, 8, 0.05, 2);
/// // 2 groups × 2 workers × 2 steps:
/// assert_eq!(report.exchange_messages, 8);
/// assert_eq!(report.group_bytes.len(), 2);
/// ```
pub fn train(
    nets: &mut [Sequential],
    exec: &OocExecutor,
    xchg: &ExchangeSchedule,
    data: &SyntheticDataset,
    per_worker: usize,
    lr: f32,
    steps: usize,
) -> DataParallelReport {
    let cfg = ChurnConfig {
        offset: 0,
        per_worker,
        lr,
        steps,
    };
    let (report, dead) = run_churn(nets, exec, xchg, data, &cfg, &FaultPlan::none());
    debug_assert!(dead.is_empty(), "empty fault plan killed a worker");
    DataParallelReport {
        losses: report.losses,
        final_snapshot: report.final_snapshot,
        swapped_bytes: report.swapped_bytes,
        recomputed_layers: report.recomputed_layers,
        peak_near_bytes: report.peak_near_bytes,
        peak_tier_bytes: report.peak_tier_bytes,
        exchange_messages: report.exchange_messages,
        exchanged_bytes: report.exchanged_bytes,
        group_bytes: report.group_bytes,
    }
}

/// [`train`] with mid-step worker failures injected from a static
/// [`FaultPlan`] — the churn-safe phased exchange.
///
/// **The complete-or-abort rule.** When worker `r` dies at step `s` after
/// shipping `k` groups, every exchange group decides its aggregation from
/// the plan, not from message timing: group `g` **completes with** `r`'s
/// contribution iff `r` shipped it before dying (`g < k`); otherwise the
/// group **aborts to survivor-only averaging** — it averages over exactly
/// the workers whose contribution was scheduled to arrive, in ascending
/// rank order, divided by that count. Survivors install identical
/// averages either way, so they end the step bit-identical at any thread
/// count (asserted); the sequential emulation of the same rule is
/// [`train_churn_reference`].
///
/// After the step, dead replicas are removed from `nets` and the
/// survivors renumber contiguously in rank order (deterministic
/// contiguous re-sharding); the next step's window shards over the
/// shrunken pool. A step must keep at least one survivor. Ranks in the
/// plan refer to the pool *at the failure's step*.
pub fn train_churn(
    nets: &mut Vec<Sequential>,
    exec: &OocExecutor,
    xchg: &ExchangeSchedule,
    data: &SyntheticDataset,
    cfg: &ChurnConfig,
    faults: &FaultPlan,
) -> ChurnReport {
    let (report, dead) = run_churn(nets, exec, xchg, data, cfg, faults);
    for &i in dead.iter().rev() {
        nets.remove(i);
    }
    report
}

/// The engine behind [`train`] and [`train_churn`]: runs the phased
/// exchange over the alive subset of `nets`, applying scheduled failures.
/// Returns the report plus the indices of dead replicas (ascending) for
/// the caller to drop.
fn run_churn(
    nets: &mut [Sequential],
    exec: &OocExecutor,
    xchg: &ExchangeSchedule,
    data: &SyntheticDataset,
    cfg: &ChurnConfig,
    faults: &FaultPlan,
) -> (ChurnReport, Vec<usize>) {
    assert!(!nets.is_empty(), "need at least one worker");
    assert_eq!(
        xchg.n_blocks(),
        exec.n_blocks(),
        "exchange schedule / executor block mismatch"
    );
    let first = nets[0].snapshot();
    for n in nets.iter() {
        assert_eq!(n.snapshot(), first, "replicas must start identical");
    }
    let (per_worker, lr) = (cfg.per_worker, cfg.lr);

    let n_groups = xchg.n_groups();
    let n_layers = nets[0].len();
    let boundaries = exec.boundaries().to_vec();
    // Per-block lookup: which group, and is this block its group's gate?
    let mut group_of = vec![0usize; exec.n_blocks()];
    let mut is_gate = vec![false; exec.n_blocks()];
    for (g, blocks) in xchg.groups().iter().enumerate() {
        for &b in blocks {
            group_of[b] = g;
        }
        is_gate[xchg.gate(g)] = true;
    }

    // Alive replicas, as indices into `nets`; rank = position here.
    let mut alive: Vec<usize> = (0..nets.len()).collect();
    let mut dead: Vec<usize> = Vec::new();

    let mut losses = Vec::with_capacity(cfg.steps);
    let mut pool_sizes = Vec::with_capacity(cfg.steps);
    let mut swapped = 0usize;
    let mut recomputed = 0usize;
    let mut peak_near = 0usize;
    let mut peak_tier = vec![0usize; exec.tiers().len()];
    let mut messages = 0usize;
    let mut shipped = 0usize;
    let mut group_bytes = vec![0usize; n_groups];
    let mut aborted = 0usize;
    let mut completed_with_dead = 0usize;
    let mut offset = cfg.offset;

    for step in 0..cfg.steps {
        let workers = alive.len();
        let start = offset;
        assert!(
            start + per_worker * workers <= data.len(),
            "dataset too small: need {} samples",
            start + per_worker * workers
        );

        // Who dies this step, and after how many shipped groups. All
        // complete-or-abort decisions derive from this static table.
        let dying_at = faults.at_step(step);
        for &(rank, _) in &dying_at {
            assert!(rank < workers, "failure rank {rank} outside pool {workers}");
        }
        assert!(
            dying_at.len() < workers,
            "a step must keep at least one survivor"
        );
        let mut death_after: Vec<Option<usize>> = vec![None; workers];
        for &(rank, k) in &dying_at {
            death_after[rank] = Some(k.min(n_groups));
        }
        // Group g's scheduled contributors: survivors always, a dying
        // worker only for the groups it ships before the failure.
        let contributors: Vec<Vec<usize>> = (0..n_groups)
            .map(|g| {
                (0..workers)
                    .filter(|&r| death_after[r].is_none_or(|k| g < k))
                    .collect()
            })
            .collect();
        let expected_msgs: usize = contributors.iter().map(Vec::len).sum();
        for &(_, k) in &dying_at {
            let k = k.min(n_groups);
            completed_with_dead += k;
            aborted += n_groups - k;
        }

        // Channels: workers -> aggregator, aggregator -> each worker.
        let (to_agg, from_workers): (Sender<GroupMsg>, Receiver<GroupMsg>) = unbounded();
        let replies: Vec<ReplyChannel> = (0..workers).map(|_| unbounded()).collect();
        let reply_senders: Vec<Sender<Vec<ParamGrads>>> =
            replies.iter().map(|(s, _)| s.clone()).collect();

        // Survivors carry averaged gradients out; dying workers only a
        // loss and stats (their update never happens).
        let mut step_results: Vec<Option<(f32, Option<Gradients>, OocStats)>> =
            (0..workers).map(|_| None).collect();

        let agg_messages = &mut messages;
        let agg_shipped = &mut shipped;
        let agg_group_bytes = &mut group_bytes;
        std::thread::scope(|scope| {
            // Aggregator: groups complete in launch order (each worker
            // ships them in order), but messages from different workers
            // interleave freely — bucket until a group's scheduled
            // contributors all arrived, average in fixed rank order
            // (deterministic), reply to the survivors. This runs while
            // workers are still in their backward phase: the overlap the
            // phased exchange is for.
            let (contributors, death_after) = (&contributors, &death_after);
            scope.spawn(move || {
                let mut buckets: Vec<Vec<Option<Vec<ParamGrads>>>> =
                    vec![vec![None; workers]; n_groups];
                let mut next = 0usize;
                for _ in 0..expected_msgs {
                    let (rank, g, payload) = from_workers.recv().expect("worker died");
                    *agg_messages += 1;
                    let bytes: usize = payload
                        .iter()
                        .flat_map(|pg| pg.grads.iter())
                        .map(Tensor::bytes)
                        .sum();
                    *agg_shipped += bytes;
                    agg_group_bytes[g] = bytes;
                    let prev = buckets[g][rank].replace(payload);
                    assert!(prev.is_none(), "duplicate message for group {g}");
                    while next < n_groups
                        && contributors[next]
                            .iter()
                            .all(|&r| buckets[next][r].is_some())
                    {
                        // Average over the scheduled contributors in fixed
                        // rank order (flatten over the rank-indexed bucket
                        // row preserves it).
                        let mut ranked = std::mem::take(&mut buckets[next]).into_iter().flatten();
                        let mut acc = ranked.next().expect("groups have a contributor");
                        for other in ranked {
                            for (a, b) in acc.iter_mut().zip(&other) {
                                for (ta, tb) in a.grads.iter_mut().zip(&b.grads) {
                                    ta.axpy(1.0, tb);
                                }
                            }
                        }
                        for pg in &mut acc {
                            for t in &mut pg.grads {
                                t.scale(1.0 / contributors[next].len() as f32);
                            }
                        }
                        for (r, s) in reply_senders.iter().enumerate() {
                            if death_after[r].is_none() {
                                s.send(acc.clone()).expect("worker died");
                            }
                        }
                        next += 1;
                    }
                }
            });

            // Workers.
            let nets_view: &[Sequential] = nets;
            for (rank, result) in step_results.iter_mut().enumerate() {
                let net = &nets_view[alive[rank]];
                let to_agg = to_agg.clone();
                let from_agg = replies[rank].1.clone();
                let (group_of, is_gate) = (&group_of, &is_gate);
                let (xchg, boundaries) = (&xchg, &boundaries);
                let my_death = death_after[rank];
                scope.spawn(move || {
                    let (x, y): (Tensor, Vec<usize>) = data.shard(start, per_worker, rank);
                    // Blocks finish backward in descending order, so a
                    // group's members arrive consecutively: stage them
                    // and ship at the gate, without waiting for the
                    // average (it is installed after the step).
                    let mut staged: Vec<Vec<ParamGrads>> = Vec::new();
                    let (loss, mut grads, stats) = exec.grad_step(net, &x, &y, |b, block_grads| {
                        staged.push(block_grads.to_vec());
                        if is_gate[b] {
                            // Ascending layer order across the group.
                            let payload: Vec<ParamGrads> =
                                staged.drain(..).rev().flatten().collect();
                            let g = group_of[b];
                            // A dying worker ships only its first
                            // `groups_shipped` groups; the rest are lost
                            // with it (the aggregator never waits for
                            // them — the fault plan is static).
                            if my_death.is_none_or(|k| g < k) {
                                to_agg.send((rank, g, payload)).expect("aggregator died");
                            }
                        }
                    });
                    if my_death.is_none() {
                        // Install the averages (arriving in launch order).
                        for g in 0..xchg.n_groups() {
                            let avg = from_agg.recv().expect("aggregator died");
                            let (s, e) = group_span(xchg, g, boundaries, n_layers);
                            grads.per_layer[s..e].clone_from_slice(&avg);
                        }
                        *result = Some((loss, Some(grads), stats));
                    } else {
                        // Dead before the update: the loss and the stats
                        // are real (the shard was computed), the weights
                        // never advance.
                        *result = Some((loss, None, stats));
                    }
                });
            }
        });

        let mut step_loss = 0.0f32;
        for (rank, result) in step_results.into_iter().enumerate() {
            let (loss, grads, stats) = result.expect("worker finished");
            if let Some(grads) = grads {
                nets[alive[rank]].apply(&grads, lr);
            }
            step_loss += loss;
            swapped += stats.swapped_in_bytes + stats.swapped_out_bytes;
            recomputed += stats.recomputed_layers;
            peak_near = peak_near.max(stats.peak_near_bytes);
            for (p, s) in peak_tier.iter_mut().zip(&stats.peak_tier_bytes) {
                *p = (*p).max(*s);
            }
        }
        losses.push(step_loss / workers as f32);
        pool_sizes.push(workers);
        offset += per_worker * workers;

        // Contiguous re-sharding: drop the dead ranks, survivors keep
        // their relative order and renumber 0..pool.
        for &(rank, _) in dying_at.iter().rev() {
            dead.push(alive.remove(rank));
        }
    }
    dead.sort_unstable();

    let final_snapshot = nets[alive[0]].snapshot();
    for &i in &alive {
        assert_eq!(
            nets[i].snapshot(),
            final_snapshot,
            "replicas diverged — exchange broke determinism"
        );
    }
    let report = ChurnReport {
        losses,
        pool_sizes,
        final_snapshot,
        swapped_bytes: swapped,
        recomputed_layers: recomputed,
        peak_near_bytes: peak_near,
        peak_tier_bytes: peak_tier,
        exchange_messages: messages,
        exchanged_bytes: shipped,
        group_bytes,
        aborted_groups: aborted,
        completed_with_dead,
        samples_consumed: offset - cfg.offset,
    };
    (report, dead)
}

/// Train `nets` with the original one-message-per-block protocol — the
/// un-merged ([`ExchangeSchedule::per_block`]) special case of [`train`].
pub fn train_data_parallel(
    nets: &mut [Sequential],
    exec: &OocExecutor,
    data: &SyntheticDataset,
    per_worker: usize,
    lr: f32,
    steps: usize,
) -> DataParallelReport {
    let xchg = ExchangeSchedule::per_block(exec.n_blocks());
    train(nets, exec, &xchg, data, per_worker, lr, steps)
}

/// The sequential single-worker emulation of the same `workers`-shard
/// data-parallel step: shard gradients are computed one rank at a time
/// on one thread, accumulated in rank order, and averaged with the exact
/// float operations the aggregator uses. This is the **bitwise
/// reference** for [`train`] — for any worker count, thread count, or
/// exchange grouping, `train` must leave its replicas at exactly the
/// weights this function produces (grouping moves messages, never
/// arithmetic). Returns the per-step mean losses; `net` is left at the
/// final parameters.
pub fn train_reference(
    net: &mut Sequential,
    exec: &OocExecutor,
    data: &SyntheticDataset,
    per_worker: usize,
    workers: usize,
    lr: f32,
    steps: usize,
) -> Vec<f32> {
    let global = per_worker * workers;
    assert!(
        steps * global <= data.len(),
        "dataset too small: need {} samples",
        steps * global
    );
    let mut losses = Vec::with_capacity(steps);
    for step in 0..steps {
        let start = step * global;
        let mut acc: Option<Gradients> = None;
        let mut step_loss = 0.0f32;
        for rank in 0..workers {
            let (x, y) = data.shard(start, per_worker, rank);
            let (loss, grads, _) = exec.grad_step(net, &x, &y, |_, _| {});
            step_loss += loss;
            match &mut acc {
                None => acc = Some(grads),
                Some(a) => a.accumulate(&grads),
            }
        }
        let mut avg = acc.expect("workers >= 1");
        avg.scale(1.0 / workers as f32);
        net.apply(&avg, lr);
        losses.push(step_loss / workers as f32);
    }
    losses
}

/// The sequential single-worker emulation of [`train_churn`]'s
/// complete-or-abort rule — the **bitwise reference** for fault-injected
/// runs, as [`train_reference`] is for fault-free ones. Starting from a
/// `pool`-worker pool, each step computes every participant's shard
/// gradients in rank order on one thread, then averages each exchange
/// group over exactly the contributors the [`FaultPlan`] schedules
/// (ascending rank, divided by the contributor count) with the exact
/// float operations the aggregator uses. `net` plays every surviving
/// replica at once (they stay bit-identical); returns the per-step mean
/// participant losses.
///
/// Unlike the fault-free reference, the grouping *is* arithmetic-bearing
/// here: a worker that died after shipping one of three groups leaves
/// different divisors on each group's average, so the reference needs the
/// [`ExchangeSchedule`] to reproduce the spans.
pub fn train_churn_reference(
    net: &mut Sequential,
    exec: &OocExecutor,
    xchg: &ExchangeSchedule,
    data: &SyntheticDataset,
    cfg: &ChurnConfig,
    pool: usize,
    faults: &FaultPlan,
) -> Vec<f32> {
    assert!(pool >= 1, "need at least one worker");
    let n_layers = net.len();
    let n_groups = xchg.n_groups();
    let boundaries = exec.boundaries().to_vec();
    let mut workers = pool;
    let mut offset = cfg.offset;
    let mut losses = Vec::with_capacity(cfg.steps);
    for step in 0..cfg.steps {
        let dying_at = faults.at_step(step);
        assert!(dying_at.len() < workers, "must keep at least one survivor");
        let mut death_after: Vec<Option<usize>> = vec![None; workers];
        for &(rank, k) in &dying_at {
            assert!(rank < workers, "failure rank {rank} outside pool {workers}");
            death_after[rank] = Some(k.min(n_groups));
        }

        let mut per_rank: Vec<Gradients> = Vec::with_capacity(workers);
        let mut step_loss = 0.0f32;
        for rank in 0..workers {
            let (x, y) = data.shard(offset, cfg.per_worker, rank);
            let (loss, grads, _) = exec.grad_step(net, &x, &y, |_, _| {});
            step_loss += loss;
            per_rank.push(grads);
        }

        // Per group: average over the scheduled contributors with the
        // aggregator's float ops (first contributor's payload, axpy the
        // rest in ascending rank order, one scale at the end).
        let mut installed = Gradients {
            per_layer: vec![ParamGrads::default(); n_layers],
        };
        for g in 0..n_groups {
            let (s, e) = group_span(xchg, g, &boundaries, n_layers);
            let contr: Vec<usize> = (0..workers)
                .filter(|&r| death_after[r].is_none_or(|k| g < k))
                .collect();
            let mut acc: Vec<ParamGrads> = per_rank[contr[0]].per_layer[s..e].to_vec();
            for &r in &contr[1..] {
                for (a, b) in acc.iter_mut().zip(&per_rank[r].per_layer[s..e]) {
                    for (ta, tb) in a.grads.iter_mut().zip(&b.grads) {
                        ta.axpy(1.0, tb);
                    }
                }
            }
            for pg in &mut acc {
                for t in &mut pg.grads {
                    t.scale(1.0 / contr.len() as f32);
                }
            }
            installed.per_layer[s..e].clone_from_slice(&acc);
        }
        net.apply(&installed, cfg.lr);
        losses.push(step_loss / workers as f32);
        offset += cfg.per_worker * workers;
        workers -= dying_at.len();
    }
    losses
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::BlockPolicy;
    use karma_tensor::small_cnn;

    fn dataset() -> SyntheticDataset {
        SyntheticDataset::classification(256, 1, 16, 4, 33)
    }

    fn replicas(n: usize) -> Vec<Sequential> {
        (0..n).map(|_| small_cnn(4, 77)).collect()
    }

    fn ooc_exec(n_layers: usize) -> OocExecutor {
        OocExecutor::new(
            vec![0, 3, 6],
            vec![
                BlockPolicy::Swap,
                BlockPolicy::Recompute,
                BlockPolicy::Resident,
            ],
            usize::MAX / 2,
            n_layers,
        )
    }

    #[test]
    fn replicas_stay_identical_and_loss_falls() {
        let data = dataset();
        let mut nets = replicas(4);
        let exec = ooc_exec(nets[0].len());
        let report = train_data_parallel(&mut nets, &exec, &data, 8, 0.05, 6);
        assert_eq!(report.losses.len(), 6);
        assert!(report.losses.last().unwrap() < report.losses.first().unwrap());
        assert!(report.swapped_bytes > 0);
        assert!(report.recomputed_layers > 0);
        assert_eq!(report.exchange_messages, 6 * 4 * 3);
        assert!(report.exchanged_bytes > 0);
        assert_eq!(report.group_bytes.len(), 3);
    }

    #[test]
    fn grouping_moves_messages_not_arithmetic() {
        // Per-block vs merged vs bulk grouping: fewer, larger messages,
        // identical bytes, bit-identical weights.
        let data = dataset();
        let schedules = [
            ExchangeSchedule::per_block(3),
            ExchangeSchedule::new(vec![vec![2, 1], vec![0]], 3),
            ExchangeSchedule::bulk(3),
        ];
        let mut snapshots = Vec::new();
        let mut totals = Vec::new();
        for xchg in &schedules {
            let mut nets = replicas(2);
            let exec = ooc_exec(nets[0].len());
            let report = train(&mut nets, &exec, xchg, &data, 8, 0.05, 3);
            assert_eq!(report.exchange_messages, 3 * 2 * xchg.n_groups());
            assert_eq!(report.group_bytes.len(), xchg.n_groups());
            totals.push(report.exchanged_bytes);
            snapshots.push(report.final_snapshot);
        }
        assert_eq!(snapshots[0], snapshots[1], "merged grouping changed bits");
        assert_eq!(snapshots[0], snapshots[2], "bulk grouping changed bits");
        assert_eq!(totals[0], totals[1], "total payload must not change");
        assert_eq!(totals[0], totals[2]);
    }

    #[test]
    fn train_matches_sequential_reference_bitwise() {
        let data = dataset();
        for workers in [1, 2, 4] {
            let mut nets = replicas(workers);
            let exec = ooc_exec(nets[0].len());
            let xchg = ExchangeSchedule::new(vec![vec![2, 1], vec![0]], 3);
            let report = train(&mut nets, &exec, &xchg, &data, 8, 0.05, 3);

            let mut reference = small_cnn(4, 77);
            let ref_losses = train_reference(&mut reference, &exec, &data, 8, workers, 0.05, 3);
            assert_eq!(
                report.final_snapshot,
                reference.snapshot(),
                "{workers} workers diverged from the sequential reference"
            );
            assert_eq!(report.losses, ref_losses);
        }
    }

    #[test]
    fn dp_matches_large_batch_single_worker_closely() {
        // 2 workers × shard 8 with averaged gradients ≈ single worker with
        // batch 16 (identical up to float reassociation in the loss mean).
        let data = dataset();
        let mut nets = replicas(2);
        let exec = ooc_exec(nets[0].len());
        let report = train_data_parallel(&mut nets, &exec, &data, 8, 0.05, 3);

        let mut single = small_cnn(4, 77);
        for step in 0..3 {
            let (x, y) = data.batch(step * 16, 16);
            single.train_step(&x, &y, 0.05);
        }
        let a = report.final_snapshot;
        let b = single.snapshot();
        assert_eq!(a.len(), b.len());
        let max_rel = a
            .iter()
            .zip(&b)
            .map(|(x, y)| (x - y).abs() / y.abs().max(1e-3))
            .fold(0.0f32, f32::max);
        assert!(max_rel < 1e-3, "max relative deviation {max_rel}");
    }

    #[test]
    fn single_worker_dp_is_bitwise_in_core_ooc() {
        // One worker, phased exchange degenerates to a no-op averaging:
        // must equal the plain OOC step exactly.
        let data = dataset();
        let mut nets = replicas(1);
        let exec = ooc_exec(nets[0].len());
        let report = train_data_parallel(&mut nets, &exec, &data, 16, 0.05, 2);

        let mut plain = small_cnn(4, 77);
        for step in 0..2 {
            let (x, y) = data.batch(step * 16, 16);
            exec.train_step(&mut plain, &x, &y, 0.05);
        }
        assert_eq!(report.final_snapshot, plain.snapshot());
    }

    fn churn_cfg(steps: usize) -> ChurnConfig {
        ChurnConfig {
            offset: 0,
            per_worker: 8,
            lr: 0.05,
            steps,
        }
    }

    #[test]
    fn empty_fault_plan_matches_plain_train() {
        let data = dataset();
        let xchg = ExchangeSchedule::new(vec![vec![2, 1], vec![0]], 3);

        let mut plain = replicas(3);
        let exec = ooc_exec(plain[0].len());
        let expected = train(&mut plain, &exec, &xchg, &data, 8, 0.05, 3);

        let mut nets = replicas(3);
        let report = train_churn(
            &mut nets,
            &exec,
            &xchg,
            &data,
            &churn_cfg(3),
            &FaultPlan::none(),
        );
        assert_eq!(report.final_snapshot, expected.final_snapshot);
        assert_eq!(report.losses, expected.losses);
        assert_eq!(report.pool_sizes, vec![3, 3, 3]);
        assert_eq!(report.aborted_groups, 0);
        assert_eq!(report.completed_with_dead, 0);
        assert_eq!(nets.len(), 3);
    }

    #[test]
    fn mid_exchange_failure_matches_the_sequential_reference_bitwise() {
        // Worker 1 of 4 dies at step 1 after shipping group 0 of 2: group
        // 0 completes with its contribution (divisor 4), group 1 aborts
        // to survivor-only averaging (divisor 3). Survivors must land on
        // exactly the reference weights, run after run.
        let data = dataset();
        let xchg = ExchangeSchedule::new(vec![vec![2, 1], vec![0]], 3);
        let faults = FaultPlan::new(vec![WorkerFailure {
            step: 1,
            rank: 1,
            groups_shipped: 1,
        }]);
        let cfg = churn_cfg(3);

        let mut reference = small_cnn(4, 77);
        let exec = ooc_exec(reference.len());
        let ref_losses =
            train_churn_reference(&mut reference, &exec, &xchg, &data, &cfg, 4, &faults);

        for _ in 0..2 {
            let mut nets = replicas(4);
            let report = train_churn(&mut nets, &exec, &xchg, &data, &cfg, &faults);
            assert_eq!(report.final_snapshot, reference.snapshot(), "bit parity");
            assert_eq!(report.losses, ref_losses);
            assert_eq!(report.pool_sizes, vec![4, 4, 3]);
            assert_eq!(report.completed_with_dead, 1);
            assert_eq!(report.aborted_groups, 1);
            assert_eq!(nets.len(), 3, "dead replica dropped from the pool");
            // One message lost: the dead worker's unshipped group 1.
            assert_eq!(report.exchange_messages, 2 * 4 + (2 * 4 - 1) + 2 * 3);
        }
    }

    #[test]
    fn failure_before_first_ship_aborts_every_group() {
        let data = dataset();
        let xchg = ExchangeSchedule::per_block(3);
        let faults = FaultPlan::new(vec![WorkerFailure {
            step: 0,
            rank: 0,
            groups_shipped: 0,
        }]);
        let cfg = churn_cfg(2);

        let mut reference = small_cnn(4, 77);
        let exec = ooc_exec(reference.len());
        let ref_losses =
            train_churn_reference(&mut reference, &exec, &xchg, &data, &cfg, 2, &faults);

        let mut nets = replicas(2);
        let report = train_churn(&mut nets, &exec, &xchg, &data, &cfg, &faults);
        assert_eq!(report.final_snapshot, reference.snapshot());
        assert_eq!(report.losses, ref_losses);
        assert_eq!(report.aborted_groups, 3);
        assert_eq!(report.completed_with_dead, 0);
        assert_eq!(report.pool_sizes, vec![2, 1]);
    }

    #[test]
    #[should_panic(expected = "at least one survivor")]
    fn killing_the_whole_pool_in_one_step_is_rejected() {
        let data = dataset();
        let xchg = ExchangeSchedule::per_block(3);
        let faults = FaultPlan::new(vec![
            WorkerFailure {
                step: 0,
                rank: 0,
                groups_shipped: 0,
            },
            WorkerFailure {
                step: 0,
                rank: 1,
                groups_shipped: 0,
            },
        ]);
        let mut nets = replicas(2);
        let exec = ooc_exec(nets[0].len());
        train_churn(&mut nets, &exec, &xchg, &data, &churn_cfg(1), &faults);
    }

    #[test]
    #[should_panic(expected = "duplicate failure")]
    fn duplicate_failures_are_rejected() {
        let f = WorkerFailure {
            step: 0,
            rank: 0,
            groups_shipped: 0,
        };
        FaultPlan::new(vec![f, f]);
    }

    #[test]
    #[should_panic(expected = "dataset too small")]
    fn dataset_bounds_checked() {
        let data = SyntheticDataset::classification(8, 1, 16, 4, 1);
        let mut nets = replicas(2);
        let exec = ooc_exec(nets[0].len());
        train_data_parallel(&mut nets, &exec, &data, 8, 0.05, 2);
    }

    #[test]
    #[should_panic(expected = "cover every block")]
    fn partial_exchange_coverage_is_rejected() {
        ExchangeSchedule::new(vec![vec![2, 1]], 3);
    }

    #[test]
    #[should_panic(expected = "descending order")]
    fn ascending_groups_are_rejected() {
        ExchangeSchedule::new(vec![vec![1, 2], vec![0]], 3);
    }
}

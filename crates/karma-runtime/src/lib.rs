//! Real out-of-core execution of KARMA-style schedules.
//!
//! The simulator (`karma-sim`) answers *how fast* a schedule runs; this
//! crate answers *whether it computes the right thing*, reproducing the
//! paper's accuracy-parity validation (Sec. IV-D) at laptop scale:
//!
//! * [`store`] — a budgeted **near-memory** arena plus an unbounded **far
//!   memory** store; every activation lives in exactly one of them and all
//!   movement is accounted (bytes, transfer counts, peak usage);
//! * [`exec::OocExecutor`] — runs a real `karma-tensor` training step under
//!   a hard near-memory budget, with per-block policies (resident / swap /
//!   recompute) mirroring the planner's schedules. Because layers are pure
//!   functions over explicitly saved inputs, the executed arithmetic is
//!   **bit-identical** to in-core training — the property the paper's
//!   accuracy experiments check empirically;
//! * [`dp`] — multi-worker data parallelism with the *grouped phased*
//!   gradient exchange and host-side update of Sec. III-G, implemented with
//!   real threads over zero-copy shared aggregation buffers
//!   ([`dp::ExchangeBuffers`]): gradients fold in place group-by-group as
//!   blocks finish backward, overlapping aggregation with the remaining
//!   backward/swap work (the old channel transport is kept as a bitwise
//!   oracle);
//! * [`bridge`] — the plan→runtime lowering: a validated `karma-core`
//!   `Plan` becomes a configured [`exec::OocExecutor`] (policies, eviction
//!   order, prefetch schedule) plus, for distributed plans, the
//!   [`dp::ExchangeSchedule`] its `AR`/`U` ops prescribe — with residency
//!   and exchange replays predicting the executed trajectory, message
//!   count, and shipped bytes exactly;
//! * [`elastic`] — fault-tolerant training on the planned path: mid-step
//!   worker death resolved by [`dp`]'s deterministic complete-or-abort
//!   rule, re-lowering + hot swap of the executor and exchange schedule
//!   on every pool shrink or growth, and far-store checkpoint/restore
//!   with bitwise-identical resume.
//!
//! **Workspace position:** the execution-side top layer over
//! `karma-tensor`. The parity-critical modules ([`store`], [`exec`],
//! [`dp`], [`fault`]) stay independent of the analysis stack so parity
//! results cannot be contaminated by the models they validate; only
//! [`bridge`] links `karma-core`, and only to *consume* plans.

pub mod bridge;
pub mod dp;
pub mod elastic;
pub mod exec;
pub mod fault;
pub mod store;

pub use bridge::{
    block_grad_bytes, expected_exchange, expected_exchange_timing, expected_residency,
    expected_residency_tiered, expected_residency_tiered_as, expected_swap_timing,
    graph_boundaries_to_net, lower_dist_plan, lower_plan, lower_plan_tiered, BridgeError,
    ExchangeReplay, ExchangeTiming, ResidencyReplay, SwapAccounting, SwapTiming, SwapTransfer,
};
pub use dp::{
    train, train_channel_reference, train_churn, train_churn_channel_reference,
    train_churn_reference, train_churn_with_buffers, train_data_parallel, train_reference,
    train_with_buffers, ChurnConfig, ChurnReport, DataParallelReport, ExchangeBuffers,
    ExchangeSchedule, FaultPlan, WorkerFailure,
};
pub use elastic::{
    Checkpoint, ElasticDriver, ElasticError, ElasticOptions, ElasticReport, PhaseInfo, PoolEvent,
};
pub use exec::{BlockPolicy, ExecEvent, OocExecutor, OocStats, ResidencySample};
pub use fault::{train_with_failures, Failure, FaultReport};
pub use store::{FarMemory, NearMemory, SlotStore, TierSpec, TierStack};

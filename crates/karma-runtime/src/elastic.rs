//! Elastic fault-tolerant training on the planned path: pool churn,
//! re-lowering, and far-store checkpoint/restore.
//!
//! The paper's Sec. II-B argument for out-of-core data parallelism is
//! that every worker holds a *complete* replica, so the pool can shrink
//! (or grow) without losing the model. [`crate::fault`] demonstrates the
//! shrink over the naive per-block protocol; this module runs the full
//! production recovery story over the real lowered pipeline:
//!
//! * **Churn-safe phased exchange** — mid-step failures are injected into
//!   [`crate::dp::train_churn`] through its static
//!   [`FaultPlan`], so a worker dying between
//!   exchange groups resolves deterministically (complete-or-abort rule,
//!   documented there);
//! * **Re-plan on pool change** — whenever the pool shrinks *or grows*,
//!   [`ElasticDriver`] re-lowers the plan through the existing
//!   `karma-core` bridge ([`lower_dist_plan`] /
//!   [`crate::bridge::lower_plan_tiered`]) and hot-swaps the executor and
//!   [`ExchangeSchedule`] between steps; an infeasible pool surfaces as a
//!   typed [`ElasticError`], never a panic mid-swap;
//! * **Checkpoint/restore through the far store** — [`Checkpoint`]
//!   serializes model + step + data cursor with the workspace serde
//!   plumbing and parks the bytes in a [`TierStack`] slot, pricing the
//!   save like any other far-memory transfer. A restored run resumes at
//!   the checkpointed step (not step 0) and is **bitwise-identical** to
//!   an uninterrupted run from that step: parameters are copied verbatim
//!   (no arithmetic) and the f32 → JSON → f32 round trip is exact
//!   (shortest-round-trip float printing).
//!
//! The "RNG cursor" of a checkpoint is the dataset sample offset:
//! `SyntheticDataset` pre-generates its stream from a seeded ChaCha RNG,
//! so a position in the stream *is* the RNG state.

use karma_core::plan::Plan;
use karma_tensor::{Sequential, SyntheticDataset, Tensor};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use crate::bridge::{lower_dist_plan, lower_plan_tiered, BridgeError};
use crate::dp::{
    train_churn_with_buffers, ChurnConfig, ExchangeBuffers, ExchangeSchedule, FaultPlan,
    WorkerFailure,
};
use crate::exec::OocExecutor;
use crate::store::{TierSpec, TierStack};

// ------------------------------------------------------------ checkpoint

/// A far-store training checkpoint: everything needed to resume a run at
/// `step` bitwise-identically — the flat parameter snapshot (replicas are
/// bit-identical, so one suffices for the whole pool), the completed-step
/// count, the dataset cursor, and the pool size to rebuild.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Completed steps; a resumed run starts here.
    pub step: usize,
    /// Dataset sample offset of the next step's window (the RNG cursor:
    /// the synthetic stream is position-addressable).
    pub cursor: usize,
    /// Worker-pool size at save time.
    pub pool: usize,
    /// Flat [`Sequential::snapshot`] of the (identical) replicas.
    pub params: Vec<f32>,
}

impl Checkpoint {
    /// Capture a checkpoint from one replica of an identical pool.
    pub fn capture(net: &Sequential, step: usize, cursor: usize, pool: usize) -> Self {
        Checkpoint {
            step,
            cursor,
            pool,
            params: net.snapshot(),
        }
    }

    /// Serialized size in bytes (what the far-store slot will hold).
    pub fn bytes(&self) -> usize {
        serde_json::to_string(self)
            .expect("checkpoint serializes")
            .len()
            * 4
    }

    /// Serialize and park the checkpoint in `store` tier `tier`, slot
    /// `key`, replacing any previous checkpoint there. The write moves
    /// through the tier like any swap-out: capacity is enforced and the
    /// transfer is priced at the tier's copy passes.
    pub fn save(&self, store: &mut TierStack, tier: usize, key: usize) {
        if store.contains(tier, key) {
            store.swap_in(tier, key); // drop the stale checkpoint
        }
        let text = serde_json::to_string(self).expect("checkpoint serializes");
        let encoded: Vec<f32> = text.bytes().map(f32::from).collect();
        store.swap_out(tier, key, Tensor::from_vec(&[encoded.len()], encoded));
    }

    /// Fetch and deserialize the checkpoint at `store[tier][key]`,
    /// leaving the slot empty. Panics when the slot is empty (like every
    /// store read); returns a typed error when the slot holds something
    /// that is not a checkpoint.
    pub fn load(store: &mut TierStack, tier: usize, key: usize) -> Result<Self, ElasticError> {
        let t = store.swap_in(tier, key);
        let bytes: Vec<u8> = t.data.iter().map(|&v| v as u8).collect();
        let text =
            String::from_utf8(bytes).map_err(|e| ElasticError::CorruptCheckpoint(e.to_string()))?;
        serde_json::from_str(&text).map_err(|e| ElasticError::CorruptCheckpoint(e.to_string()))
    }

    /// Rebuild the worker pool this checkpoint describes: resize `nets`
    /// to [`Checkpoint::pool`] replicas (spawning fresh ones with
    /// `spawn`) and restore every replica to the saved parameters.
    pub fn restore_pool(&self, nets: &mut Vec<Sequential>, spawn: &dyn Fn() -> Sequential) {
        nets.truncate(self.pool);
        while nets.len() < self.pool {
            nets.push(spawn());
        }
        for n in nets.iter_mut() {
            n.restore(&self.params);
        }
    }
}

// ---------------------------------------------------------------- events

/// A scheduled pool change. `step` is the global step index the event
/// applies at; `Fail` strikes *inside* that step, `Leave`/`Join` apply at
/// its start. Events at the same step apply in list order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PoolEvent {
    /// Worker `rank` dies mid-step after shipping `groups_shipped`
    /// exchange groups (the churn-safe path:
    /// [`crate::dp::train_churn`]'s complete-or-abort rule decides each
    /// group's averaging).
    Fail {
        /// Step the failure strikes in.
        step: usize,
        /// Rank in the pool at that step.
        rank: usize,
        /// Exchange groups shipped before dying.
        groups_shipped: usize,
    },
    /// Worker `rank` leaves cleanly before `step` runs (the
    /// between-steps shrink of [`crate::fault`]). Ignored when it would
    /// empty the pool, matching the legacy recovery semantics.
    Leave {
        /// Step the departure precedes.
        step: usize,
        /// Rank in the pool at that point.
        rank: usize,
    },
    /// `joiners` fresh replicas join before `step` runs, restored
    /// bitwise from a survivor's snapshot (pool growth).
    Join {
        /// Step the arrivals precede.
        step: usize,
        /// Number of replicas joining.
        joiners: usize,
    },
}

impl PoolEvent {
    fn step(&self) -> usize {
        match *self {
            PoolEvent::Fail { step, .. }
            | PoolEvent::Leave { step, .. }
            | PoolEvent::Join { step, .. } => step,
        }
    }
}

// ---------------------------------------------------------------- errors

/// Why an elastic run cannot proceed — the typed surface for infeasible
/// pools and broken recovery state.
#[derive(Debug, Clone, PartialEq)]
pub enum ElasticError {
    /// The pool is (or would become) empty.
    EmptyPool,
    /// Re-lowering the plan for a `workers`-wide pool failed.
    Lower {
        /// Pool size the lowering was for.
        workers: usize,
        /// The bridge's reason.
        source: BridgeError,
    },
    /// An event names a rank outside the pool it applies to.
    UnknownRank {
        /// Step of the offending event.
        step: usize,
        /// The rank it names.
        rank: usize,
        /// Pool size at that point.
        pool: usize,
    },
    /// A scheduled step's failures would leave no survivor.
    NoSurvivors {
        /// The step in question.
        step: usize,
    },
    /// The dataset cannot cover the remaining windows of the grown pool.
    DataExhausted {
        /// Samples the next phase needs (cursor included).
        needed: usize,
        /// Samples the dataset holds.
        available: usize,
    },
    /// A growth or resume event needs to spawn fresh replicas but no
    /// spawner was provided.
    NoSpawner,
    /// A far-store slot held bytes that do not decode as a checkpoint.
    CorruptCheckpoint(String),
}

impl fmt::Display for ElasticError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ElasticError::EmptyPool => write!(f, "worker pool is empty"),
            ElasticError::Lower { workers, source } => {
                write!(
                    f,
                    "re-lowering for a {workers}-worker pool failed: {source}"
                )
            }
            ElasticError::UnknownRank { step, rank, pool } => {
                write!(
                    f,
                    "event at step {step} names rank {rank} of a {pool}-worker pool"
                )
            }
            ElasticError::NoSurvivors { step } => {
                write!(f, "failures at step {step} would leave no survivor")
            }
            ElasticError::DataExhausted { needed, available } => {
                write!(
                    f,
                    "dataset exhausted: need {needed} samples, have {available}"
                )
            }
            ElasticError::NoSpawner => write!(f, "pool growth requires a replica spawner"),
            ElasticError::CorruptCheckpoint(e) => write!(f, "corrupt checkpoint: {e}"),
        }
    }
}

impl std::error::Error for ElasticError {}

// ---------------------------------------------------------------- driver

/// How the driver produces an executor + exchange schedule for a pool.
enum LowerPath {
    /// Re-lower a validated plan through the bridge on every pool change
    /// (the planned path).
    Planned {
        plan: Plan,
        boundaries: Vec<usize>,
        budget: usize,
        n_layers: usize,
        /// Route swaps through a far-memory tier stack
        /// (`lower_plan_tiered`); `None` lowers single-pool.
        tiered: Option<(Vec<usize>, Vec<TierSpec>)>,
    },
    /// A fixed pre-built pair: hot swaps reuse it unchanged (the legacy
    /// [`crate::fault`] path, which never re-plans).
    Fixed(OocExecutor, ExchangeSchedule),
}

/// Drives elastic training: lowers the plan for the current pool, runs
/// phased-exchange steps, applies scheduled [`PoolEvent`]s (hot-swapping
/// the executor and exchange schedule on every pool change), and saves /
/// resumes [`Checkpoint`]s through a far-store tier.
///
/// Lowered pairs are **memoized per pool size**: churning back to a
/// previously-seen size (shrink to 3, grow back to 4, …) hot-swaps the
/// cached executor + exchange schedule instead of re-running the lowering
/// analysis — the plan-cache idea of `karma-serve`, applied to the
/// re-lowering path. Lowering is deterministic, so a cached pair is
/// bitwise the pair a fresh lowering would build; the memo only skips
/// work, never changes results.
pub struct ElasticDriver {
    path: LowerPath,
    /// I/O lanes every lowered executor runs its transfers on (0 =
    /// synchronous inline transfers). Applied on every lowering — hot
    /// swaps to a new pool size arm a fresh lane pool, churns back to a
    /// memoized size reuse that size's pool (step re-arm and poisoning
    /// semantics are the pool's, exactly as on the fixed path).
    io_lanes: usize,
    /// Pool size → validated lowered pair, filled on first lowering.
    lowered: Mutex<HashMap<usize, (OocExecutor, ExchangeSchedule)>>,
    /// Pool size → registered zero-copy exchange buffers, filled on first
    /// use alongside the lowered pair: a hot swap to a new pool size
    /// registers fresh buffers, churning back to a seen size reuses the
    /// earlier registration (registration is deterministic, so reuse
    /// never changes results — asserted by the buffer-safety tests).
    buffers: Mutex<HashMap<usize, Arc<ExchangeBuffers>>>,
    /// Lifetime count of [`ElasticDriver::lower_for`] calls answered from
    /// the memo.
    lower_cache_hits: AtomicUsize,
}

/// Knobs of one [`ElasticDriver::run`].
#[derive(Debug, Clone)]
pub struct ElasticOptions {
    /// Samples per worker per step.
    pub per_worker: usize,
    /// SGD learning rate.
    pub lr: f32,
    /// Global steps to reach (a resumed run only executes the remainder).
    pub total_steps: usize,
    /// Scheduled pool changes.
    pub events: Vec<PoolEvent>,
    /// Save a checkpoint every `k` completed steps (and at every
    /// pool-change boundary in between) into the far-store slot below.
    pub checkpoint_every: Option<usize>,
    /// Far-store tier the checkpoints park in.
    pub checkpoint_tier: usize,
    /// Far-store key the checkpoints park at.
    pub checkpoint_key: usize,
}

impl ElasticOptions {
    /// Plain run: no events, no checkpoints.
    pub fn plain(per_worker: usize, lr: f32, total_steps: usize) -> Self {
        ElasticOptions {
            per_worker,
            lr,
            total_steps,
            events: Vec::new(),
            checkpoint_every: None,
            checkpoint_tier: 0,
            checkpoint_key: 0,
        }
    }
}

/// One constant-pool stretch of an elastic run, between hot swaps.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseInfo {
    /// Global step the phase starts at.
    pub start_step: usize,
    /// Steps the phase ran.
    pub steps: usize,
    /// Pool size through the phase.
    pub workers: usize,
    /// Exchange messages the phase shipped.
    pub exchange_messages: usize,
    /// True when the phase ran with mid-step failures injected.
    pub faulty: bool,
}

/// Outcome of an [`ElasticDriver::run`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ElasticReport {
    /// Global step the run started at (0, or the resumed checkpoint's).
    pub start_step: usize,
    /// Mean participant loss per executed step.
    pub losses: Vec<f32>,
    /// Pool size at each executed step's start.
    pub pool_sizes: Vec<usize>,
    /// Final parameters (identical across surviving replicas).
    pub final_snapshot: Vec<f32>,
    /// The constant-pool phases the run broke into.
    pub phases: Vec<PhaseInfo>,
    /// Times the executor + exchange schedule were re-lowered and
    /// hot-swapped (pool changes; the initial lowering is not counted).
    pub relowers: usize,
    /// How many of this run's lowerings (initial + hot swaps) were
    /// answered from the driver's per-pool-size memo instead of running
    /// the lowering analysis — churn back to a previously-seen size is a
    /// cache hit. Always 0 on the fixed path, which never re-lowers.
    pub lower_cache_hits: usize,
    /// Checkpoints saved to the far store.
    pub checkpoints_saved: usize,
    /// Exchange groups that fell back to survivor-only averaging.
    pub aborted_groups: usize,
    /// Exchange groups that kept a dead worker's shipped contribution.
    pub completed_with_dead: usize,
    /// Exchange messages actually shipped.
    pub exchange_messages: usize,
    /// Gradient payload actually shipped.
    pub exchanged_bytes: usize,
    /// Highest per-worker near-memory residency across the run — the
    /// executed peak must survive every hot swap.
    pub peak_near_bytes: usize,
    /// Highest per-worker residency per far-memory tier across the run.
    pub peak_tier_bytes: Vec<usize>,
    /// Samples consumed (from the starting cursor).
    pub samples_consumed: usize,
    /// Dataset cursor after the last executed step.
    pub cursor: usize,
}

impl ElasticDriver {
    /// Drive the planned path: re-lower `plan` through
    /// [`lower_dist_plan`] on every pool change.
    pub fn from_plan(plan: Plan, boundaries: Vec<usize>, budget: usize, n_layers: usize) -> Self {
        ElasticDriver {
            path: LowerPath::Planned {
                plan,
                boundaries,
                budget,
                n_layers,
                tiered: None,
            },
            io_lanes: 0,
            lowered: Mutex::new(HashMap::new()),
            buffers: Mutex::new(HashMap::new()),
            lower_cache_hits: AtomicUsize::new(0),
        }
    }

    /// [`ElasticDriver::from_plan`] with swaps routed through a
    /// far-memory tier stack ([`crate::bridge::lower_plan_tiered`]), so
    /// the per-tier peak contracts ride through every hot swap.
    pub fn from_plan_tiered(
        plan: Plan,
        boundaries: Vec<usize>,
        budget: usize,
        n_layers: usize,
        key_bytes: Vec<usize>,
        tiers: Vec<TierSpec>,
    ) -> Self {
        ElasticDriver {
            path: LowerPath::Planned {
                plan,
                boundaries,
                budget,
                n_layers,
                tiered: Some((key_bytes, tiers)),
            },
            io_lanes: 0,
            lowered: Mutex::new(HashMap::new()),
            buffers: Mutex::new(HashMap::new()),
            lower_cache_hits: AtomicUsize::new(0),
        }
    }

    /// Drive a pre-built executor + exchange schedule with no
    /// re-planning — pool changes reuse the pair unchanged (the legacy
    /// [`crate::fault::train_with_failures`] behavior).
    pub fn fixed(exec: OocExecutor, xchg: ExchangeSchedule) -> Self {
        ElasticDriver {
            path: LowerPath::Fixed(exec, xchg),
            io_lanes: 0,
            lowered: Mutex::new(HashMap::new()),
            buffers: Mutex::new(HashMap::new()),
            lower_cache_hits: AtomicUsize::new(0),
        }
    }

    /// Run every lowered executor's transfers on `lanes` asynchronous
    /// I/O lanes ([`OocExecutor::with_io_lanes`]); 0 keeps transfers
    /// synchronous. Results are bitwise-unchanged either way — workers
    /// within a pool share the lowered executor's lane pool (each step
    /// publishes through its own slot store), and the pool is re-armed
    /// per step and poisoned by a mid-transfer panic exactly like
    /// [`ExchangeBuffers`].
    pub fn with_io_lanes(mut self, lanes: usize) -> Self {
        self.io_lanes = lanes;
        self
    }

    /// Lower the executor + exchange schedule for a `workers`-wide pool.
    /// The plan is per-worker, so the lowered schedule itself is
    /// pool-size-invariant — what changes across pools is the shard map
    /// and the exchange divisors, both owned by the runtime — but the
    /// *first* lowering at each pool size revalidates the plan end to end
    /// and surfaces an infeasible stack as a typed error at the swap
    /// point. Churning back to a previously-seen size is a memo hit:
    /// the already-validated pair is cloned out and counted in
    /// [`ElasticReport::lower_cache_hits`].
    pub fn lower_for(
        &self,
        workers: usize,
    ) -> Result<(OocExecutor, ExchangeSchedule), ElasticError> {
        if workers == 0 {
            return Err(ElasticError::EmptyPool);
        }
        let arm = |exec: OocExecutor| {
            if self.io_lanes > 0 {
                exec.with_io_lanes(self.io_lanes)
            } else {
                exec
            }
        };
        match &self.path {
            LowerPath::Fixed(exec, xchg) => Ok((arm(exec.clone()), xchg.clone())),
            LowerPath::Planned {
                plan,
                boundaries,
                budget,
                n_layers,
                tiered,
            } => {
                if let Some(pair) = self.lowered.lock().unwrap().get(&workers) {
                    self.lower_cache_hits.fetch_add(1, Ordering::Relaxed);
                    return Ok(pair.clone());
                }
                let map = |source| ElasticError::Lower { workers, source };
                let (exec, xchg) =
                    lower_dist_plan(plan, boundaries, *budget, *n_layers).map_err(map)?;
                let pair = match tiered {
                    None => (arm(exec), xchg),
                    Some((key_bytes, tiers)) => {
                        let exec = lower_plan_tiered(
                            plan, boundaries, *budget, *n_layers, key_bytes, tiers,
                        )
                        .map_err(map)?;
                        (arm(exec), xchg)
                    }
                };
                self.lowered.lock().unwrap().insert(workers, pair.clone());
                Ok(pair)
            }
        }
    }

    /// The zero-copy [`ExchangeBuffers`] registration for a
    /// `workers`-wide pool's lowered pair, memoized per pool size
    /// alongside the pair itself: the first hot swap to a size registers
    /// buffers for that size's exchange schedule, churning back reuses
    /// them. Registration depends only on the schedule and the net's
    /// layer split, so reuse is bitwise-neutral.
    pub fn buffers_for(
        &self,
        workers: usize,
        exec: &OocExecutor,
        xchg: &ExchangeSchedule,
        n_layers: usize,
    ) -> Arc<ExchangeBuffers> {
        self.buffers
            .lock()
            .unwrap()
            .entry(workers)
            .or_insert_with(|| {
                Arc::new(ExchangeBuffers::register(xchg, exec.boundaries(), n_layers))
            })
            .clone()
    }

    /// Run elastic training to `opts.total_steps`, applying the
    /// scheduled events, re-lowering on every pool change, and
    /// checkpointing into `store`. `resume` starts from a previously
    /// saved checkpoint (at its step and cursor, with its pool and
    /// parameters) instead of step 0; events before the resumed step are
    /// skipped, since the checkpointed pool already reflects them.
    /// `spawn` builds fresh replicas for growth and resume; pass `None`
    /// when neither happens.
    pub fn run(
        &self,
        nets: &mut Vec<Sequential>,
        spawn: Option<&dyn Fn() -> Sequential>,
        data: &SyntheticDataset,
        opts: &ElasticOptions,
        store: &mut TierStack,
        resume: Option<&Checkpoint>,
    ) -> Result<ElasticReport, ElasticError> {
        let mut step = 0usize;
        let mut cursor = 0usize;
        if let Some(ck) = resume {
            let spawn = spawn.ok_or(ElasticError::NoSpawner)?;
            ck.restore_pool(nets, spawn);
            step = ck.step;
            cursor = ck.cursor;
        }
        if nets.is_empty() {
            return Err(ElasticError::EmptyPool);
        }
        let start_step = step;
        let start_cursor = cursor;

        let hits_at_start = self.lower_cache_hits.load(Ordering::Relaxed);
        let (mut exec, mut xchg) = self.lower_for(nets.len())?;
        let n_layers = nets[0].len();
        let mut bufs = self.buffers_for(nets.len(), &exec, &xchg, n_layers);
        let n_groups = xchg.n_groups();

        let mut report = ElasticReport {
            start_step,
            losses: Vec::new(),
            pool_sizes: Vec::new(),
            final_snapshot: Vec::new(),
            phases: Vec::new(),
            relowers: 0,
            lower_cache_hits: 0,
            checkpoints_saved: 0,
            aborted_groups: 0,
            completed_with_dead: 0,
            exchange_messages: 0,
            exchanged_bytes: 0,
            peak_near_bytes: 0,
            peak_tier_bytes: Vec::new(),
            samples_consumed: 0,
            cursor,
        };

        while step < opts.total_steps {
            // Boundary events at this step (list order). A checkpoint at
            // step `s` is saved *before* the boundary events of step `s`
            // apply, so a resumed run replays them — including the ones
            // at its own start step.
            let mut changed = false;
            for ev in opts.events.iter().filter(|e| e.step() == step) {
                match *ev {
                    PoolEvent::Leave { rank, .. } => {
                        if rank >= nets.len() {
                            return Err(ElasticError::UnknownRank {
                                step,
                                rank,
                                pool: nets.len(),
                            });
                        }
                        // Never shrink below one worker (legacy rule).
                        if nets.len() > 1 {
                            nets.remove(rank);
                            changed = true;
                        }
                    }
                    PoolEvent::Join { joiners, .. } => {
                        if joiners > 0 {
                            let spawn = spawn.ok_or(ElasticError::NoSpawner)?;
                            let snapshot = nets[0].snapshot();
                            for _ in 0..joiners {
                                let mut fresh = spawn();
                                fresh.restore(&snapshot);
                                nets.push(fresh);
                            }
                            changed = true;
                        }
                    }
                    PoolEvent::Fail { .. } => {} // strikes inside the step
                }
            }
            if changed {
                let pair = self.lower_for(nets.len())?;
                exec = pair.0;
                xchg = pair.1;
                bufs = self.buffers_for(nets.len(), &exec, &xchg, n_layers);
                report.relowers += 1;
            }

            // Mid-step failures scheduled for this step.
            let fails: Vec<WorkerFailure> = opts
                .events
                .iter()
                .filter_map(|e| match *e {
                    PoolEvent::Fail {
                        step: s,
                        rank,
                        groups_shipped,
                    } if s == step => Some(WorkerFailure {
                        step: 0, // relative to the single-step churn call
                        rank,
                        groups_shipped,
                    }),
                    _ => None,
                })
                .collect();
            for f in &fails {
                if f.rank >= nets.len() {
                    return Err(ElasticError::UnknownRank {
                        step,
                        rank: f.rank,
                        pool: nets.len(),
                    });
                }
            }
            if fails.len() >= nets.len() {
                return Err(ElasticError::NoSurvivors { step });
            }

            // Phase length: up to the next event, checkpoint mark, or the
            // end; a fault step runs alone (the fault plan is per-call).
            let phase_steps = if fails.is_empty() {
                let next_event = opts
                    .events
                    .iter()
                    .map(PoolEvent::step)
                    .filter(|&s| s > step)
                    .min()
                    .unwrap_or(opts.total_steps)
                    .min(opts.total_steps);
                let next_mark = match opts.checkpoint_every {
                    Some(k) if k > 0 => (step / k + 1) * k,
                    _ => usize::MAX,
                };
                next_event.min(next_mark).max(step + 1) - step
            } else {
                1
            };

            let needed = cursor + opts.per_worker * nets.len() * phase_steps;
            if needed > data.len() {
                return Err(ElasticError::DataExhausted {
                    needed,
                    available: data.len(),
                });
            }

            let cfg = ChurnConfig {
                offset: cursor,
                per_worker: opts.per_worker,
                lr: opts.lr,
                steps: phase_steps,
            };
            let faults = FaultPlan::new(fails.clone());
            let phase = train_churn_with_buffers(nets, &exec, &xchg, &bufs, data, &cfg, &faults);

            report.phases.push(PhaseInfo {
                start_step: step,
                steps: phase_steps,
                workers: phase.pool_sizes[0],
                exchange_messages: phase.exchange_messages,
                faulty: !fails.is_empty(),
            });
            report.losses.extend(phase.losses);
            report.pool_sizes.extend(phase.pool_sizes);
            report.aborted_groups += phase.aborted_groups;
            report.completed_with_dead += phase.completed_with_dead;
            report.exchange_messages += phase.exchange_messages;
            report.exchanged_bytes += phase.exchanged_bytes;
            report.peak_near_bytes = report.peak_near_bytes.max(phase.peak_near_bytes);
            if report.peak_tier_bytes.len() < phase.peak_tier_bytes.len() {
                report
                    .peak_tier_bytes
                    .resize(phase.peak_tier_bytes.len(), 0);
            }
            for (p, s) in report
                .peak_tier_bytes
                .iter_mut()
                .zip(&phase.peak_tier_bytes)
            {
                *p = (*p).max(*s);
            }
            cursor += phase.samples_consumed;
            step += phase_steps;

            // A fault shrank the pool: hot-swap before the next step.
            if !fails.is_empty() && step < opts.total_steps {
                let pair = self.lower_for(nets.len())?;
                exec = pair.0;
                xchg = pair.1;
                bufs = self.buffers_for(nets.len(), &exec, &xchg, n_layers);
                report.relowers += 1;
            }

            // Checkpoint at every phase boundary on or past a mark.
            if let Some(k) = opts.checkpoint_every {
                if k > 0 && step.is_multiple_of(k) && step < opts.total_steps {
                    Checkpoint::capture(&nets[0], step, cursor, nets.len()).save(
                        store,
                        opts.checkpoint_tier,
                        opts.checkpoint_key,
                    );
                    report.checkpoints_saved += 1;
                }
            }
        }
        debug_assert_eq!(n_groups, xchg.n_groups(), "grouping is plan-derived");

        report.final_snapshot = nets[0].snapshot();
        report.samples_consumed = cursor - start_cursor;
        report.cursor = cursor;
        report.lower_cache_hits = self.lower_cache_hits.load(Ordering::Relaxed) - hits_at_start;
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp::train;
    use crate::exec::BlockPolicy;
    use karma_tensor::small_cnn;

    fn dataset() -> SyntheticDataset {
        SyntheticDataset::classification(512, 1, 16, 4, 33)
    }

    fn replicas(n: usize) -> Vec<Sequential> {
        (0..n).map(|_| small_cnn(4, 77)).collect()
    }

    fn spawn() -> Sequential {
        small_cnn(4, 77)
    }

    fn ooc_exec(n_layers: usize) -> OocExecutor {
        OocExecutor::new(
            vec![0, 3, 6],
            vec![
                BlockPolicy::Swap,
                BlockPolicy::Recompute,
                BlockPolicy::Resident,
            ],
            usize::MAX / 2,
            n_layers,
        )
    }

    fn fixed_driver(n_layers: usize) -> ElasticDriver {
        ElasticDriver::fixed(
            ooc_exec(n_layers),
            ExchangeSchedule::new(vec![vec![2, 1], vec![0]], 3),
        )
    }

    fn far_store() -> TierStack {
        TierStack::new(&[TierSpec::unbounded()])
    }

    #[test]
    fn plain_run_matches_the_direct_dp_path_bitwise() {
        let data = dataset();
        let mut nets = replicas(3);
        let exec = ooc_exec(nets[0].len());
        let xchg = ExchangeSchedule::new(vec![vec![2, 1], vec![0]], 3);
        let direct = train(&mut nets, &exec, &xchg, &data, 8, 0.05, 4);

        let driver = fixed_driver(replicas(1)[0].len());
        let mut elastic_nets = replicas(3);
        let mut store = far_store();
        let report = driver
            .run(
                &mut elastic_nets,
                None,
                &data,
                &ElasticOptions::plain(8, 0.05, 4),
                &mut store,
                None,
            )
            .expect("plain elastic run succeeds");

        assert_eq!(report.final_snapshot, direct.final_snapshot, "bit drift");
        assert_eq!(report.losses, direct.losses);
        assert_eq!(report.pool_sizes, vec![3, 3, 3, 3]);
        assert_eq!(report.relowers, 0);
        assert_eq!(report.phases.len(), 1);
        assert_eq!(report.exchange_messages, direct.exchange_messages);
        assert_eq!(report.samples_consumed, 4 * 3 * 8);
    }

    #[test]
    fn churn_schedule_shrinks_grows_and_relowers() {
        let data = dataset();
        let driver = fixed_driver(replicas(1)[0].len());
        let mut nets = replicas(4);
        let mut store = far_store();
        let mut opts = ElasticOptions::plain(8, 0.05, 6);
        opts.events = vec![
            PoolEvent::Fail {
                step: 1,
                rank: 1,
                groups_shipped: 1,
            },
            PoolEvent::Leave { step: 3, rank: 0 },
            PoolEvent::Join {
                step: 4,
                joiners: 2,
            },
        ];
        let report = driver
            .run(&mut nets, Some(&spawn), &data, &opts, &mut store, None)
            .expect("churn run succeeds");

        // 4 workers; mid-step death at 1 -> 3; clean leave at 3 -> 2;
        // growth at 4 -> 4.
        assert_eq!(report.pool_sizes, vec![4, 4, 3, 2, 4, 4]);
        assert_eq!(nets.len(), 4);
        assert_eq!(report.relowers, 3, "fail, leave, and join each hot-swap");
        assert_eq!(
            report.lower_cache_hits, 0,
            "the fixed path clones, it never consults the memo"
        );
        assert_eq!(report.completed_with_dead, 1);
        assert_eq!(report.aborted_groups, 1);
        assert!(report.phases.iter().any(|p| p.faulty));
        let stepped: usize = report.phases.iter().map(|p| p.steps).sum();
        assert_eq!(stepped, 6);
        // All replicas (including the joiners) end bit-identical.
        let head = nets[0].snapshot();
        for n in &nets[1..] {
            assert_eq!(n.snapshot(), head, "replica diverged");
        }
        assert_eq!(report.final_snapshot, head);
        // Samples: steps 0-1 at 4 workers, 2 at 3, 3 at 2, 4-5 at 4.
        assert_eq!(report.samples_consumed, 8 * (4 + 4 + 3 + 2 + 4 + 4));
    }

    #[test]
    fn io_lane_churn_runs_bitwise_match_the_synchronous_driver() {
        // The whole churn gauntlet — mid-step death, clean leave, growth —
        // re-lowered onto asynchronous I/O lanes must land on the
        // synchronous driver's bits step for step.
        let data = dataset();
        let mut opts = ElasticOptions::plain(8, 0.05, 6);
        opts.events = vec![
            PoolEvent::Fail {
                step: 1,
                rank: 1,
                groups_shipped: 1,
            },
            PoolEvent::Leave { step: 3, rank: 0 },
            PoolEvent::Join {
                step: 4,
                joiners: 2,
            },
        ];
        let run = |driver: ElasticDriver| {
            let mut nets = replicas(4);
            let mut store = far_store();
            driver
                .run(&mut nets, Some(&spawn), &data, &opts, &mut store, None)
                .expect("churn run succeeds")
        };
        let sync = run(fixed_driver(replicas(1)[0].len()));
        let lanes = run(fixed_driver(replicas(1)[0].len()).with_io_lanes(2));
        assert_eq!(
            lanes.final_snapshot, sync.final_snapshot,
            "bit drift on I/O lanes"
        );
        assert_eq!(lanes.losses, sync.losses);
        assert_eq!(lanes.pool_sizes, sync.pool_sizes);
        assert_eq!(lanes.exchange_messages, sync.exchange_messages);
    }

    #[test]
    fn checkpoint_round_trips_through_the_far_store() {
        let net = small_cnn(4, 77);
        let ck = Checkpoint::capture(&net, 5, 120, 3);
        let mut store = far_store();
        ck.save(&mut store, 0, 9);
        assert!(store.contains(0, 9));
        let back = Checkpoint::load(&mut store, 0, 9).expect("checkpoint decodes");
        assert_eq!(back, ck, "far-store round trip must be exact");
        assert!(!store.contains(0, 9), "load drains the slot");
        // Saving twice into the same slot replaces, not panics.
        ck.save(&mut store, 0, 9);
        ck.save(&mut store, 0, 9);
        assert!(store.contains(0, 9));
    }

    #[test]
    fn resume_from_checkpoint_is_bitwise_identical_and_not_from_step_zero() {
        let data = dataset();
        let driver = fixed_driver(replicas(1)[0].len());
        let events = vec![
            PoolEvent::Fail {
                step: 3,
                rank: 2,
                groups_shipped: 1,
            },
            PoolEvent::Join {
                step: 5,
                joiners: 1,
            },
        ];

        // Uninterrupted run.
        let mut full_nets = replicas(3);
        let mut full_store = far_store();
        let mut opts = ElasticOptions::plain(8, 0.05, 6);
        opts.events = events.clone();
        opts.checkpoint_every = Some(2);
        let full = driver
            .run(
                &mut full_nets,
                Some(&spawn),
                &data,
                &opts,
                &mut full_store,
                None,
            )
            .expect("uninterrupted run succeeds");
        assert!(full.checkpoints_saved >= 2);

        // Interrupted run: stop at step 4 (past the fault), keeping the
        // step-4 checkpoint in the store.
        let mut cut_nets = replicas(3);
        let mut store = far_store();
        let mut cut_opts = opts.clone();
        cut_opts.total_steps = 5;
        driver
            .run(
                &mut cut_nets,
                Some(&spawn),
                &data,
                &cut_opts,
                &mut store,
                None,
            )
            .expect("interrupted run succeeds");
        let ck = Checkpoint::load(&mut store, 0, 0).expect("checkpoint present");
        assert_eq!(ck.step, 4, "latest mark before the cut");
        assert_eq!(ck.pool, 2, "checkpoint reflects the shrunken pool");

        // Resume from a *fresh* pool — everything comes from the store.
        let mut resumed_nets: Vec<Sequential> = Vec::new();
        let resumed = driver
            .run(
                &mut resumed_nets,
                Some(&spawn),
                &data,
                &opts,
                &mut store,
                Some(&ck),
            )
            .expect("resumed run succeeds");

        assert_eq!(
            resumed.start_step, 4,
            "resume starts at the failed step, not 0"
        );
        assert_eq!(resumed.losses.len(), 2, "only the remaining steps execute");
        assert_eq!(resumed.losses, full.losses[4..]);
        assert_eq!(resumed.pool_sizes, full.pool_sizes[4..]);
        assert_eq!(
            resumed.final_snapshot, full.final_snapshot,
            "restored run must be bitwise-identical to the uninterrupted one"
        );
    }

    #[test]
    fn infeasible_events_surface_typed_errors() {
        let data = dataset();
        let driver = fixed_driver(replicas(1)[0].len());
        let mut store = far_store();

        let err = driver
            .run(
                &mut Vec::new(),
                None,
                &data,
                &ElasticOptions::plain(8, 0.05, 1),
                &mut store,
                None,
            )
            .unwrap_err();
        assert_eq!(err, ElasticError::EmptyPool);

        let mut opts = ElasticOptions::plain(8, 0.05, 2);
        opts.events = vec![PoolEvent::Fail {
            step: 0,
            rank: 7,
            groups_shipped: 0,
        }];
        let err = driver
            .run(&mut replicas(2), None, &data, &opts, &mut store, None)
            .unwrap_err();
        assert_eq!(
            err,
            ElasticError::UnknownRank {
                step: 0,
                rank: 7,
                pool: 2
            }
        );

        let mut opts = ElasticOptions::plain(8, 0.05, 2);
        opts.events = vec![
            PoolEvent::Fail {
                step: 0,
                rank: 0,
                groups_shipped: 0,
            },
            PoolEvent::Fail {
                step: 0,
                rank: 1,
                groups_shipped: 1,
            },
        ];
        let err = driver
            .run(&mut replicas(2), None, &data, &opts, &mut store, None)
            .unwrap_err();
        assert_eq!(err, ElasticError::NoSurvivors { step: 0 });

        let mut opts = ElasticOptions::plain(8, 0.05, 1);
        opts.events = vec![PoolEvent::Join {
            step: 0,
            joiners: 1,
        }];
        let err = driver
            .run(&mut replicas(1), None, &data, &opts, &mut store, None)
            .unwrap_err();
        assert_eq!(err, ElasticError::NoSpawner);

        // 512 samples cannot feed 2 workers x 8 per step for 100 steps.
        let err = driver
            .run(
                &mut replicas(2),
                None,
                &data,
                &ElasticOptions::plain(8, 0.05, 100),
                &mut store,
                None,
            )
            .unwrap_err();
        assert!(matches!(
            err,
            ElasticError::DataExhausted { available: 512, .. }
        ));
    }

    #[test]
    fn corrupt_far_store_slot_is_a_typed_error() {
        let mut store = far_store();
        store.swap_out(0, 3, Tensor::from_vec(&[2], vec![42.0, 1.0e9]));
        let err = Checkpoint::load(&mut store, 0, 3).unwrap_err();
        assert!(matches!(err, ElasticError::CorruptCheckpoint(_)));
    }

    #[test]
    fn leave_never_empties_the_pool() {
        let data = dataset();
        let driver = fixed_driver(replicas(1)[0].len());
        let mut nets = replicas(1);
        let mut store = far_store();
        let mut opts = ElasticOptions::plain(8, 0.05, 2);
        opts.events = vec![PoolEvent::Leave { step: 1, rank: 0 }];
        let report = driver
            .run(&mut nets, None, &data, &opts, &mut store, None)
            .expect("sole survivor keeps training");
        assert_eq!(report.pool_sizes, vec![1, 1]);
        assert_eq!(report.relowers, 0);
    }
}

//! U-Net (Ronneberger et al., paper ref \[42\]) for the ssTEM segmentation
//! workload — the paper's example of a model with **non-affine** skip
//! connections from the contracting path to the expansive path
//! (Sec. III-F.4): KARMA's second optimization flips contracting-path blocks
//! with outgoing skips to *recompute* so they need not be swapped in
//! prematurely.

use karma_graph::{GraphBuilder, LayerId, ModelGraph, Shape};

/// Two 3×3 same-padded Conv-ReLU pairs (one U-Net "double conv").
fn double_conv(b: &mut GraphBuilder, ch: usize) -> LayerId {
    b.conv(ch, 3, 1, 1);
    b.relu();
    b.conv(ch, 3, 1, 1);
    b.relu()
}

/// The original 4-level U-Net with widths 64…1024, adapted to same-padding
/// on 512×512 single-channel ssTEM sections (Table III: >31M params,
/// 27 weight layers).
pub fn unet() -> ModelGraph {
    let mut b = GraphBuilder::new("U-Net", Shape::chw(1, 512, 512));

    // Contracting path; remember each level's feature map for the skips.
    let mut skips: Vec<LayerId> = Vec::with_capacity(4);
    for width in [64usize, 128, 256, 512] {
        let level = double_conv(&mut b, width);
        skips.push(level);
        b.max_pool(2, 2, 0);
    }

    // Bottleneck.
    double_conv(&mut b, 1024);

    // Expansive path: up-sample, concat with the mirrored skip, double conv.
    for width in [512usize, 256, 128, 64] {
        b.conv_transpose(width, 2, 2);
        let up = b.cursor();
        let skip = skips.pop().expect("one skip per level");
        b.concat(skip, up);
        double_conv(&mut b, width);
    }

    // 1×1 conv to per-pixel class scores.
    b.conv(2, 1, 1, 0);
    b.softmax();
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unet_matches_reference_parameter_count() {
        let g = unet();
        g.validate().unwrap();
        let m = g.total_params() as f64 / 1e6;
        // Reference U-Net: ~31M.
        assert!((30.0..33.0).contains(&m), "got {m}M");
    }

    #[test]
    fn unet_has_long_range_skips() {
        let g = unet();
        let skips = g.skip_edges();
        // 4 encoder->decoder skips spanning at least the bottleneck (the
        // innermost one crosses ~7 layers, the outermost ~40).
        let long = skips.iter().filter(|(s, d)| d - s > 5).count();
        assert!(long >= 4, "expected >=4 long skips, got {long}");
        let very_long = skips.iter().filter(|(s, d)| d - s > 30).count();
        assert!(very_long >= 1, "outermost skip should span the whole net");
    }

    #[test]
    fn unet_output_is_per_pixel() {
        let g = unet();
        let last = g.layers.last().unwrap();
        assert_eq!(last.out_shape, Shape::chw(2, 512, 512));
    }

    #[test]
    fn decoder_restores_resolution() {
        let g = unet();
        // The deepest feature map is 1024 x 32 x 32.
        assert!(g
            .layers
            .iter()
            .any(|l| l.out_shape == Shape::chw(1024, 32, 32)));
    }

    #[test]
    fn activations_dominate_weights_at_batch() {
        // U-Net's OOC pressure is activation-driven (high-res feature maps),
        // unlike VGG whose pressure is weight-driven.
        let g = unet();
        let p = karma_graph::MemoryParams::default();
        let m = g.memory(8, &p);
        assert!(m.activations > 4 * m.weights);
    }
}

//! Model zoo for the KARMA reproduction.
//!
//! Builds every model the paper evaluates (Table III) as a
//! [`karma_graph::ModelGraph`], plus the Megatron-LM configurations of
//! Table IV and Turing-NLG:
//!
//! | Model | Dataset | Params (paper) | Builder |
//! |---|---|---|---|
//! | ResNet-50 | ImageNet | >25M | [`resnet::resnet50`] |
//! | VGG16 | ImageNet | >169M† | [`vgg::vgg16`] |
//! | ResNet-200 | ImageNet | >64M | [`resnet::resnet200`] |
//! | WRN-28-10 | CIFAR-10 | >36M | [`wrn::wrn28_10`] |
//! | ResNet-1001 | CIFAR-10 | >10M | [`resnet::resnet1001`] |
//! | U-Net | ssTEM | >31M | [`unet::unet`] |
//! | Megatron-LM | OpenWT | 0.7B–8.3B | [`transformer::megatron`] |
//! | Turing-NLG | OpenWT | 17B | [`transformer::turing_nlg`] |
//!
//! † The canonical VGG16 has 138M parameters; the paper's ">169M" likely
//! counts additional state. We build the canonical network.
//!
//! [`datasets`] carries the sample shapes/counts of Table III so workload
//! generators can size synthetic data identically to the paper.
//!
//! **Workspace position:** builds on `karma-graph`/`karma-hw` for model and
//! node descriptions and on `karma-core` for calibrated memory presets;
//! consumed by `karma-dist` and `karma-bench`.

pub mod datasets;
pub mod micro;
pub mod resnet;
pub mod rnn;
pub mod transformer;
pub mod unet;
pub mod vgg;
pub mod wrn;

pub use datasets::DatasetSpec;

use karma_graph::{MemoryParams, ModelGraph};

/// Profiled activation-overhead calibrations (see
/// [`MemoryParams::activation_overhead`]). Each constant is fitted so that
/// the model's in-core/out-of-core boundary on a 16 GiB V100 lands exactly
/// where paper Fig. 5 reports it ("only the first mini-batch size fits in
/// memory") — the reproduction's analogue of the paper's one-off offline
/// profiling pass per model (Sec. III-D).
pub const CAL_RESNET50: f64 = 0.65;
/// VGG16 calibration (in-core at batch 32, out-of-core from 64).
pub const CAL_VGG16: f64 = 1.8;
/// ResNet-200 calibration (in-core at batch 4, max ~6, out-of-core from 8).
pub const CAL_RESNET200: f64 = 4.5;
/// WRN-28-10 calibration (in-core at batch 256, out-of-core from 512).
pub const CAL_WRN28_10: f64 = 1.0;
/// ResNet-1001 calibration (in-core at batch 64, out-of-core from 128).
pub const CAL_RESNET1001: f64 = 0.8;
/// U-Net calibration (in-core at batch 8, out-of-core from 16).
pub const CAL_UNET: f64 = 1.0;

/// One Fig. 5 experiment: a model, its dataset, the paper's x-axis and the
/// profiled memory-model calibration for this model.
#[derive(Debug, Clone)]
pub struct Fig5Workload {
    /// The model graph.
    pub model: ModelGraph,
    /// The dataset it trains on.
    pub dataset: DatasetSpec,
    /// Mini-batch sizes on the paper's x-axis (first one fits in memory).
    pub batch_sizes: Vec<usize>,
    /// Profiled memory parameters for this model.
    pub mem: MemoryParams,
}

/// The six single-GPU workloads of paper Fig. 5, with the exact batch-size
/// sweeps from the plots' x-axes.
pub fn fig5_workloads() -> Vec<Fig5Workload> {
    vec![
        Fig5Workload {
            model: resnet::resnet50(),
            dataset: DatasetSpec::imagenet(),
            batch_sizes: vec![128, 256, 384, 512, 640, 768],
            mem: MemoryParams::calibrated(CAL_RESNET50),
        },
        Fig5Workload {
            model: vgg::vgg16(),
            dataset: DatasetSpec::imagenet(),
            batch_sizes: vec![32, 64, 96, 128, 160],
            mem: MemoryParams::calibrated(CAL_VGG16),
        },
        Fig5Workload {
            model: resnet::resnet200(),
            dataset: DatasetSpec::imagenet(),
            batch_sizes: vec![4, 8, 12, 16, 20, 24],
            mem: MemoryParams::calibrated(CAL_RESNET200),
        },
        Fig5Workload {
            model: wrn::wrn28_10(),
            dataset: DatasetSpec::cifar10(),
            batch_sizes: vec![256, 512, 768, 1024, 1280],
            mem: MemoryParams::calibrated(CAL_WRN28_10),
        },
        Fig5Workload {
            model: resnet::resnet1001(),
            dataset: DatasetSpec::cifar10(),
            batch_sizes: vec![64, 128, 192, 256, 320],
            mem: MemoryParams::calibrated(CAL_RESNET1001),
        },
        Fig5Workload {
            model: unet::unet(),
            dataset: DatasetSpec::sstem(),
            batch_sizes: vec![8, 16, 24, 32, 40],
            mem: MemoryParams::calibrated(CAL_UNET),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_fig5_workloads_validate() {
        for w in fig5_workloads() {
            w.model.validate().unwrap();
            assert!(!w.batch_sizes.is_empty());
            assert_eq!(
                w.model.layers[0].out_shape, w.dataset.sample_shape,
                "{}: input shape should match dataset",
                w.model.name
            );
        }
    }

    #[test]
    fn fig5_batch_sweeps_match_paper_axes() {
        let ws = fig5_workloads();
        assert_eq!(ws.len(), 6);
        assert_eq!(ws[0].batch_sizes, vec![128, 256, 384, 512, 640, 768]);
        assert_eq!(ws[5].batch_sizes, vec![8, 16, 24, 32, 40]);
    }

    #[test]
    fn only_first_batch_size_fits_on_a_16gib_v100() {
        // The Fig. 5 caption: "only the first reported mini-batch size
        // (x-axis) fits in memory". Usable capacity mirrors
        // `karma_hw::GpuSpec::v100_16gb().usable_bytes()` (92% of 16 GiB).
        let usable = (16.0 * (1u64 << 30) as f64 * 0.92) as u64;
        for w in fig5_workloads() {
            let first = w.model.peak_footprint(w.batch_sizes[0], &w.mem);
            assert!(
                first <= usable,
                "{}: first batch {} should fit ({:.2} GiB)",
                w.model.name,
                w.batch_sizes[0],
                first as f64 / (1u64 << 30) as f64
            );
            for &b in &w.batch_sizes[1..] {
                let peak = w.model.peak_footprint(b, &w.mem);
                assert!(
                    peak > usable,
                    "{}: batch {} should exceed memory ({:.2} GiB)",
                    w.model.name,
                    b,
                    peak as f64 / (1u64 << 30) as f64
                );
            }
        }
    }
}

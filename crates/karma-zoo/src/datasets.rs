//! Dataset descriptions from paper Table III.

use karma_graph::Shape;
use serde::{Deserialize, Serialize};

/// A dataset as the planner sees it: a name, sample count and per-sample
/// shape. Actual pixels/tokens are synthesized by `karma-tensor::data`; the
/// paper's throughput results depend only on these quantities.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Dataset name.
    pub name: String,
    /// Number of training samples (Table III "# Samples").
    pub samples: u64,
    /// Per-sample tensor shape.
    pub sample_shape: Shape,
    /// Number of target classes (vocabulary size for language modelling).
    pub classes: usize,
}

impl DatasetSpec {
    /// ImageNet-1k resized to 224×224 (Table III: 1,280,000 samples).
    pub fn imagenet() -> Self {
        DatasetSpec {
            name: "ImageNet".into(),
            samples: 1_280_000,
            sample_shape: Shape::chw(3, 224, 224),
            classes: 1000,
        }
    }

    /// CIFAR-10 (Table III: 60,000 samples, 32×32).
    pub fn cifar10() -> Self {
        DatasetSpec {
            name: "CIFAR-10".into(),
            samples: 60_000,
            sample_shape: Shape::chw(3, 32, 32),
            classes: 10,
        }
    }

    /// ssTEM serial-section EM stack (Table III: 30 samples). The challenge
    /// images are 512×512 single-channel.
    pub fn sstem() -> Self {
        DatasetSpec {
            name: "ssTEM".into(),
            samples: 30,
            sample_shape: Shape::chw(1, 512, 512),
            classes: 2,
        }
    }

    /// OpenWebText tokenized to GPT-2's 1024-token context (Table III:
    /// 7,200,000 samples).
    pub fn openwebtext() -> Self {
        DatasetSpec {
            name: "OpenWT".into(),
            samples: 7_200_000,
            sample_shape: Shape(vec![1024]),
            classes: 50_257,
        }
    }

    /// Iterations needed for one epoch at global batch `global_batch`.
    pub fn iters_per_epoch(&self, global_batch: u64) -> u64 {
        assert!(global_batch > 0, "batch must be positive");
        self.samples.div_ceil(global_batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iii_sample_counts() {
        assert_eq!(DatasetSpec::imagenet().samples, 1_280_000);
        assert_eq!(DatasetSpec::cifar10().samples, 60_000);
        assert_eq!(DatasetSpec::sstem().samples, 30);
        assert_eq!(DatasetSpec::openwebtext().samples, 7_200_000);
    }

    #[test]
    fn iters_per_epoch_rounds_up() {
        let d = DatasetSpec::sstem();
        assert_eq!(d.iters_per_epoch(8), 4); // 30/8 -> 3.75 -> 4
        assert_eq!(d.iters_per_epoch(30), 1);
        assert_eq!(d.iters_per_epoch(31), 1);
    }

    #[test]
    fn imagenet_samples_are_224() {
        let d = DatasetSpec::imagenet();
        assert_eq!(d.sample_shape, Shape::chw(3, 224, 224));
        // ~100 KiB per f32-encoded sample as the paper notes (<100 KiB jpeg).
        assert_eq!(d.sample_shape.elements(), 150_528);
    }
}

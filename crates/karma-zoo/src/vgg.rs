//! VGG16 (Simonyan & Zisserman, paper ref \[39\]).

use karma_graph::{GraphBuilder, ModelGraph, Shape};

/// VGG16 configuration "D": 13 convolutions in five pooled groups followed
/// by three fully connected layers. Table III lists it among the ImageNet
/// workloads; its 100M+-parameter FC head makes it swap-heavy, which is why
/// Fig. 5's VGG16 panel saturates earliest.
pub fn vgg16() -> ModelGraph {
    let mut b = GraphBuilder::new("VGG16", Shape::chw(3, 224, 224));
    let groups: [(usize, usize); 5] = [(2, 64), (2, 128), (3, 256), (3, 512), (3, 512)];
    for (convs, ch) in groups {
        for _ in 0..convs {
            b.conv(ch, 3, 1, 1);
            b.relu();
        }
        b.max_pool(2, 2, 0);
    }
    b.flatten();
    b.fc(4096);
    b.relu();
    b.dropout();
    b.fc(4096);
    b.relu();
    b.dropout();
    b.fc(1000);
    b.softmax();
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vgg16_matches_reference_parameter_count() {
        let g = vgg16();
        g.validate().unwrap();
        let m = g.total_params() as f64 / 1e6;
        // Canonical VGG16: 138.36M.
        assert!((137.0..140.0).contains(&m), "got {m}M");
    }

    #[test]
    fn vgg16_is_a_pure_chain() {
        assert!(vgg16().is_linear());
    }

    #[test]
    fn vgg16_flops_match_reference() {
        // ~15.5 GFLOPs multiply-adds ⇒ ~31 GFLOPs at 2 flops/MAC.
        let f = vgg16().forward_flops(1) / 1e9;
        assert!((28.0..34.0).contains(&f), "got {f} GFLOPs");
    }

    #[test]
    fn fc_head_dominates_parameters() {
        let g = vgg16();
        let fc_params: u64 = g
            .layers
            .iter()
            .filter(|l| l.kind.mnemonic() == "fc")
            .map(|l| l.params())
            .sum();
        assert!(fc_params as f64 > 0.85 * g.total_params() as f64);
    }
}

//! GPT-2-family transformer stacks: Megatron-LM (Table IV) and Turing-NLG.

use karma_graph::{GraphBuilder, LayerKind, ModelGraph, Shape};
use serde::{Deserialize, Serialize};

/// GPT-2 BPE vocabulary size used by Megatron-LM and Turing-NLG.
pub const GPT2_VOCAB: usize = 50_257;
/// Context length used throughout the paper's NLP experiments.
pub const SEQ_LEN: usize = 1024;

/// One Megatron-LM configuration row from paper Table IV.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MegatronConfig {
    /// Hidden size `H`.
    pub hidden: usize,
    /// Attention heads `A`.
    pub heads: usize,
    /// Transformer layers `L`.
    pub layers: usize,
    /// Nominal parameter count in billions as reported in Table IV.
    pub nominal_params_b: f64,
    /// Model-parallel ways the original implementation uses (Table IV "MP").
    pub model_parallel: usize,
    /// GPUs of the original MP+DP hybrid configuration (Table IV "MP+DP").
    pub hybrid_gpus: usize,
    /// GPUs used by data-parallel KARMA in Table IV.
    pub karma_gpus: usize,
}

/// The five Megatron-LM rows of Table IV.
pub fn megatron_table4() -> Vec<MegatronConfig> {
    vec![
        MegatronConfig {
            hidden: 1152,
            heads: 12,
            layers: 18,
            nominal_params_b: 0.7,
            model_parallel: 1,
            hybrid_gpus: 64,
            karma_gpus: 32,
        },
        MegatronConfig {
            hidden: 1536,
            heads: 16,
            layers: 40,
            nominal_params_b: 1.2,
            model_parallel: 2,
            hybrid_gpus: 128,
            karma_gpus: 64,
        },
        MegatronConfig {
            hidden: 1920,
            heads: 20,
            layers: 54,
            nominal_params_b: 2.5,
            model_parallel: 4,
            hybrid_gpus: 256,
            karma_gpus: 128,
        },
        MegatronConfig {
            hidden: 2304,
            heads: 24,
            layers: 64,
            nominal_params_b: 4.2,
            model_parallel: 8,
            hybrid_gpus: 512,
            karma_gpus: 256,
        },
        MegatronConfig {
            hidden: 3072,
            heads: 32,
            layers: 72,
            nominal_params_b: 8.3,
            model_parallel: 16,
            hybrid_gpus: 1024,
            karma_gpus: 512,
        },
    ]
}

/// Build a GPT-2-style decoder stack: embedding, `layers` transformer
/// blocks, final layer-norm and the (weight-tied) output projection.
pub fn gpt2_like(name: &str, hidden: usize, heads: usize, layers: usize) -> ModelGraph {
    let mut b = GraphBuilder::new(name, Shape(vec![SEQ_LEN]));
    b.push(
        LayerKind::Embedding {
            vocab: GPT2_VOCAB,
            d_model: hidden,
        },
        format!("Embedding {GPT2_VOCAB}x{hidden}"),
    );
    for i in 0..layers {
        b.push(
            LayerKind::TransformerBlock {
                heads,
                d_model: hidden,
            },
            format!("Layer {i} (h{heads} d{hidden})"),
        );
    }
    b.push(LayerKind::LayerNorm, "Final LayerNorm");
    // Output head: logits over the vocabulary (weights tied to the
    // embedding in the reference implementations; we count them once by
    // modelling the head as an FC consuming the last hidden state).
    b.push(
        LayerKind::FullyConnected {
            in_features: hidden,
            out_features: GPT2_VOCAB,
        },
        "LM head",
    );
    b.softmax();
    b.build()
}

/// Megatron-LM at one of the Table IV configurations.
pub fn megatron(cfg: &MegatronConfig) -> ModelGraph {
    gpt2_like(
        &format!("Megatron-LM-{:.1}B", cfg.nominal_params_b),
        cfg.hidden,
        cfg.heads,
        cfg.layers,
    )
}

/// Turing-NLG (paper Sec. IV-C): 78 transformer layers, hidden 4256,
/// 28 attention heads, 17B parameters.
pub fn turing_nlg() -> ModelGraph {
    gpt2_like("Turing-NLG-17B", 4256, 28, 78)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_configs_hit_nominal_parameter_counts() {
        // Rows 2-5 follow the standard 12·L·H² + embeddings estimate within
        // tolerance. Row 1 (H=1152, L=18) analytically yields ~0.35B; the
        // paper's "0.7B" label doesn't match 12·L·H² for that row, so we only
        // require the built model to exceed half the nominal count there.
        for (i, cfg) in megatron_table4().into_iter().enumerate() {
            let g = megatron(&cfg);
            g.validate().unwrap();
            let b = g.total_params() as f64 / 1e9;
            if i == 0 {
                assert!(b > 0.3, "{}: built {b:.2}B", g.name);
            } else {
                let rel = (b - cfg.nominal_params_b).abs() / cfg.nominal_params_b;
                assert!(
                    rel < 0.25,
                    "{}: built {b:.2}B vs nominal {:.1}B",
                    g.name,
                    cfg.nominal_params_b
                );
            }
        }
    }

    #[test]
    fn turing_nlg_is_seventeen_billion() {
        let g = turing_nlg();
        let b = g.total_params() as f64 / 1e9;
        assert!((15.5..18.5).contains(&b), "got {b:.2}B");
        // 78 transformer layers as the paper states.
        let xf = g
            .layers
            .iter()
            .filter(|l| l.kind.mnemonic() == "xfmr")
            .count();
        assert_eq!(xf, 78);
    }

    #[test]
    fn transformer_stack_is_linear() {
        let cfg = megatron_table4()[0];
        assert!(megatron(&cfg).is_linear());
    }

    #[test]
    fn megatron_8b_needs_sixteen_16gib_gpus_for_model_state() {
        // Paper intro: 8.3B params need >= 16 GPUs of 16 GiB for MP.
        let cfg = megatron_table4()[4];
        let g = megatron(&cfg);
        let p = karma_graph::MemoryParams::default();
        let state = g.memory(1, &p).model_state() as f64;
        let per_gpu = 16.0 * (1u64 << 30) as f64;
        assert!(state / 16.0 < per_gpu, "16-way MP must fit");
        // 8-way would leave no room for activations/workspace on 16 GiB.
        assert!(
            state / 8.0 > per_gpu * 0.7,
            "8-way MP should be tight/infeasible"
        );
    }

    #[test]
    fn bigger_configs_cost_more_flops() {
        let cfgs = megatron_table4();
        let mut prev = 0.0;
        for c in &cfgs {
            let f = megatron(c).forward_flops(1);
            assert!(f > prev, "flops must grow across Table IV rows");
            prev = f;
        }
    }
}

//! Executable micro-models: `ModelGraph` mirrors of the real
//! `karma-tensor` test networks.
//!
//! The plan→runtime bridge's byte-level cross-checks rest on one premise:
//! the analytic graph describes **exactly** the tensors the executor
//! touches, so that graph layer `i`'s activation bytes (under
//! `MemoryParams::exact`) equal near-memory key `i`. These builders are
//! the single source of that correspondence — `exec_bench`, the
//! `plan_to_runtime` example and the integration tests all plan over the
//! same mirror, and `tests/plan_to_runtime.rs::profile_mirrors_real_tensor_bytes`
//! guards the pairing layer for layer.
//!
//! Keep each builder in lockstep with its `karma_tensor` counterpart.

use karma_graph::{GraphBuilder, ModelGraph, Shape};

/// Mirror of `karma_tensor::conv_stack(pairs, classes, _)`: `pairs`
/// conv+ReLU pairs at constant 1×16×16 input, then flatten + FC. Graph
/// layer 0 is the input; net layer `i` is graph layer `i + 1`.
pub fn conv_stack_graph(pairs: usize, classes: usize) -> ModelGraph {
    let mut b = GraphBuilder::new("conv-stack", Shape::chw(1, 16, 16));
    for _ in 0..pairs {
        b.conv(4, 3, 1, 1);
        b.relu();
    }
    b.flatten();
    b.fc(classes);
    b.build()
}

/// Mirror of `karma_tensor::mlp_stack(hidden, width, classes, _)`:
/// flatten over a 1×16×16 input, then `hidden + 2` FC layers of `width`
/// units with ReLU between them — the parameter-dominated workload the
/// executed ZeRO comparison plans over.
pub fn mlp_stack_graph(hidden: usize, width: usize, classes: usize) -> ModelGraph {
    let mut b = GraphBuilder::new("mlp-stack", Shape::chw(1, 16, 16));
    b.flatten();
    b.fc(width);
    b.relu();
    for _ in 0..hidden {
        b.fc(width);
        b.relu();
    }
    b.fc(classes);
    b.build()
}

/// Mirror of `karma_tensor::small_resnet_style(classes, _)`: conv-BN-ReLU
/// blocks with stride-2 downsampling, global average pooling, flatten, FC.
pub fn resnet_style_graph(classes: usize) -> ModelGraph {
    let mut b = GraphBuilder::new("resnet-style", Shape::chw(1, 16, 16));
    b.conv(8, 3, 1, 1);
    b.batch_norm();
    b.relu();
    b.conv(8, 3, 2, 1);
    b.batch_norm();
    b.relu();
    b.conv(16, 3, 2, 1);
    b.batch_norm();
    b.relu();
    b.global_avg_pool();
    b.flatten();
    b.fc(classes);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_stack_graph_has_expected_shape() {
        let g = conv_stack_graph(6, 4);
        assert_eq!(g.len(), 2 * 6 + 2 + 1, "pairs + flatten/fc + input");
        assert_eq!(g.layers.last().unwrap().out_shape.elements(), 4);
    }

    #[test]
    fn mlp_stack_graph_has_expected_shape() {
        let g = mlp_stack_graph(3, 64, 4);
        // input + flatten + (fc, relu) + 3×(fc, relu) + fc
        assert_eq!(g.len(), 1 + 1 + 2 + 3 * 2 + 1);
        assert_eq!(g.layers.last().unwrap().out_shape.elements(), 4);
    }

    #[test]
    fn resnet_style_graph_has_expected_shape() {
        let g = resnet_style_graph(4);
        assert_eq!(g.len(), 13, "12 layers + input");
        assert_eq!(g.layers.last().unwrap().out_shape.elements(), 4);
    }
}

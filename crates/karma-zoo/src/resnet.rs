//! Residual networks: ResNet-50/200 (ImageNet) and ResNet-1001 (CIFAR-10).
//!
//! ImageNet ResNets use the bottleneck design of He et al. (paper ref \[2\])
//! with stage block counts {50: 3-4-6-3, 200: 3-24-36-3}. ResNet-1001 is
//! the pre-activation CIFAR bottleneck variant: depth = 9n+2 with n=111
//! bottleneck units across three stages of width {16,32,64}×4.

use karma_graph::{GraphBuilder, LayerId, ModelGraph, Shape};

/// One ImageNet bottleneck unit: 1×1 reduce → 3×3 → 1×1 expand, with a
/// projection shortcut when shape changes. Returns the id of the final add.
fn bottleneck(
    b: &mut GraphBuilder,
    entry: LayerId,
    mid_ch: usize,
    out_ch: usize,
    stride: usize,
) -> LayerId {
    let needs_projection = b.shape_of(entry).channels() != Some(out_ch) || stride != 1;
    b.set_cursor(entry);
    b.conv_bn_relu(mid_ch, 1, 1, 0);
    b.conv_bn_relu(mid_ch, 3, stride, 1);
    b.conv(out_ch, 1, 1, 0);
    b.batch_norm();
    let main = b.cursor();
    let shortcut = if needs_projection {
        b.set_cursor(entry);
        b.conv(out_ch, 1, stride, 0);
        b.batch_norm()
    } else {
        entry
    };
    let joined = b.add(main, shortcut);
    b.relu();
    joined
}

/// Build an ImageNet bottleneck ResNet with the given per-stage unit counts.
fn imagenet_resnet(name: &str, stages: [usize; 4]) -> ModelGraph {
    let mut b = GraphBuilder::new(name, Shape::chw(3, 224, 224));
    b.conv_bn_relu(64, 7, 2, 3);
    b.max_pool(3, 2, 1);
    let widths = [(64usize, 256usize), (128, 512), (256, 1024), (512, 2048)];
    for (stage, &units) in stages.iter().enumerate() {
        let (mid, out) = widths[stage];
        for unit in 0..units {
            let stride = if stage > 0 && unit == 0 { 2 } else { 1 };
            let entry = b.cursor();
            bottleneck(&mut b, entry, mid, out, stride);
        }
    }
    b.global_avg_pool();
    b.flatten();
    b.fc(1000);
    b.softmax();
    b.build()
}

/// ResNet-50 on ImageNet (Table III: >25M params).
pub fn resnet50() -> ModelGraph {
    imagenet_resnet("ResNet-50", [3, 4, 6, 3])
}

/// ResNet-200 on ImageNet (Table III: >64M params). He et al.'s deepest
/// ImageNet variant: stages [3, 24, 36, 3].
pub fn resnet200() -> ModelGraph {
    imagenet_resnet("ResNet-200", [3, 24, 36, 3])
}

/// ResNet-1001 on CIFAR-10 (Table III: >10M params): pre-activation
/// bottlenecks, depth 9n+2 with n = 111 units **per stage** (3 stages,
/// 333 three-conv units, 1001 weighted layers total).
pub fn resnet1001() -> ModelGraph {
    let mut b = GraphBuilder::new("ResNet-1001", Shape::chw(3, 32, 32));
    b.conv_bn_relu(16, 3, 1, 1);
    let widths = [(16usize, 64usize), (32, 128), (64, 256)];
    for (stage, &(mid, out)) in widths.iter().enumerate() {
        for unit in 0..111 {
            let stride = if stage > 0 && unit == 0 { 2 } else { 1 };
            let entry = b.cursor();
            bottleneck(&mut b, entry, mid, out, stride);
        }
    }
    b.global_avg_pool();
    b.flatten();
    b.fc(10);
    b.softmax();
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use karma_graph::MemoryParams;

    #[test]
    fn resnet50_matches_reference_parameter_count() {
        let g = resnet50();
        g.validate().unwrap();
        let m = g.total_params() as f64 / 1e6;
        // torchvision resnet50: 25.557M.
        assert!((25.0..26.5).contains(&m), "got {m}M");
    }

    #[test]
    fn resnet50_flops_match_reference() {
        // Reference: ~4.1 GFLOPs multiply-adds ⇒ ~8.2 GFLOPs at 2 flops/MAC.
        let g = resnet50();
        let f = g.forward_flops(1) / 1e9;
        assert!((7.0..10.0).contains(&f), "got {f} GFLOPs");
    }

    #[test]
    fn resnet200_params() {
        let g = resnet200();
        g.validate().unwrap();
        let m = g.total_params() as f64 / 1e6;
        // Reference resnet200: 64.7M.
        assert!((63.0..67.0).contains(&m), "got {m}M");
    }

    #[test]
    fn resnet1001_params() {
        let g = resnet1001();
        g.validate().unwrap();
        let m = g.total_params() as f64 / 1e6;
        // Pre-act ResNet-1001 on CIFAR: 10.3M.
        assert!((9.5..11.5).contains(&m), "got {m}M");
    }

    #[test]
    fn residual_topology_present() {
        let g = resnet50();
        assert!(!g.is_linear());
        // 16 bottleneck units -> at least 16 skip edges.
        assert!(g.skip_edges().len() >= 16);
    }

    #[test]
    fn resnet50_output_is_imagenet_classes() {
        let g = resnet50();
        let last = g.layers.last().unwrap();
        assert_eq!(last.out_shape, Shape::vec(1000));
    }

    #[test]
    fn resnet200_barely_fits_small_batches_on_16gib() {
        // Paper: ResNet-200 local batch limited to ~6 ImageNet samples on a
        // 16 GiB V100 at ordinary training settings; Fig. 5 marks batch 4 as
        // the in-core point and batch 8+ as out-of-core. With the profiled
        // calibration (see `fig5_workloads`) these boundaries reproduce.
        let g = resnet200();
        let p = MemoryParams::calibrated(crate::CAL_RESNET200);
        let cap = 16.0 * (1u64 << 30) as f64;
        assert!((g.peak_footprint(4, &p) as f64) < cap, "batch 4 must fit");
        assert!((g.peak_footprint(8, &p) as f64) > cap, "batch 8 exceeds");
    }

    #[test]
    fn stage_downsampling_halves_resolution() {
        let g = resnet50();
        // Find the final pre-pool feature map: 2048 x 7 x 7.
        let gap = g
            .layers
            .iter()
            .find(|l| l.kind.mnemonic() == "gap")
            .unwrap();
        assert_eq!(gap.in_shape, Shape::chw(2048, 7, 7));
    }
}

//! Wide residual network WRN-28-10 (Zagoruyko & Komodakis, paper ref \[40\]).

use karma_graph::{GraphBuilder, LayerId, ModelGraph, Shape};

/// One pre-activation basic unit (BN-ReLU-Conv ×2) with widened channels.
fn wide_basic(b: &mut GraphBuilder, entry: LayerId, out_ch: usize, stride: usize) -> LayerId {
    let needs_projection = b.shape_of(entry).channels() != Some(out_ch) || stride != 1;
    b.set_cursor(entry);
    b.batch_norm();
    b.relu();
    b.conv(out_ch, 3, stride, 1);
    b.batch_norm();
    b.relu();
    b.dropout();
    b.conv(out_ch, 3, 1, 1);
    let main = b.cursor();
    let shortcut = if needs_projection {
        b.set_cursor(entry);
        b.conv(out_ch, 1, stride, 0)
    } else {
        entry
    };
    b.add(main, shortcut)
}

/// WRN-28-10 on CIFAR-10 (Table III: >36M params): depth 28 ⇒ n = 4 basic
/// units per stage, widening factor 10 ⇒ widths {160, 320, 640}.
pub fn wrn28_10() -> ModelGraph {
    let mut b = GraphBuilder::new("WRN-28-10", Shape::chw(3, 32, 32));
    b.conv(16, 3, 1, 1);
    for (stage, width) in [160usize, 320, 640].into_iter().enumerate() {
        for unit in 0..4 {
            let stride = if stage > 0 && unit == 0 { 2 } else { 1 };
            let entry = b.cursor();
            wide_basic(&mut b, entry, width, stride);
        }
    }
    b.batch_norm();
    b.relu();
    b.global_avg_pool();
    b.flatten();
    b.fc(10);
    b.softmax();
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrn_matches_reference_parameter_count() {
        let g = wrn28_10();
        g.validate().unwrap();
        let m = g.total_params() as f64 / 1e6;
        // Reference WRN-28-10: 36.5M.
        assert!((35.5..37.5).contains(&m), "got {m}M");
    }

    #[test]
    fn wrn_has_residual_topology() {
        let g = wrn28_10();
        assert!(!g.is_linear());
        assert!(g.skip_edges().len() >= 12);
    }

    #[test]
    fn wrn_final_features_are_640x8x8() {
        let g = wrn28_10();
        let gap = g
            .layers
            .iter()
            .find(|l| l.kind.mnemonic() == "gap")
            .unwrap();
        assert_eq!(gap.in_shape, Shape::chw(640, 8, 8));
    }
}

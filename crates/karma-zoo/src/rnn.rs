//! Recurrent and attention models — coverage for the paper's Sec. III-C.5
//! (LSTM) and III-C.6 (self-attention) cost formulas.
//!
//! The paper's evaluation centres on CNNs and transformer stacks, but its
//! cost model explicitly supports RNNs and attention ("we adapt the number
//! of operations to the specific RNN variant we use"); these builders give
//! the planner real graphs exercising those layer kinds.

use karma_graph::{GraphBuilder, LayerKind, ModelGraph, Shape};

/// A stacked-LSTM sequence classifier: embedding-free (raw feature
/// sequences), `layers` LSTM layers of width `hidden`, and a softmax head
/// over the final step's features.
pub fn lstm_classifier(
    seq_len: usize,
    features: usize,
    hidden: usize,
    layers: usize,
    classes: usize,
) -> ModelGraph {
    let mut b = GraphBuilder::new(
        format!("LSTM-{layers}x{hidden}"),
        Shape::seq(seq_len, features),
    );
    for i in 0..layers {
        b.push(LayerKind::Lstm { hidden }, format!("LSTM {i} ({hidden})"));
    }
    b.push(
        LayerKind::FullyConnected {
            in_features: seq_len * hidden,
            out_features: classes,
        },
        format!("FC, {classes}"),
    );
    b.softmax();
    b.build()
}

/// An attention encoder: `layers` self-attention layers with interleaved
/// layer-norms (the paper's III-C.6 primitive, *not* the fused
/// transformer-block composite) over `seq_len × d_model` inputs.
pub fn attention_encoder(
    seq_len: usize,
    d_model: usize,
    heads: usize,
    layers: usize,
    classes: usize,
) -> ModelGraph {
    let mut b = GraphBuilder::new(
        format!("Attn-{layers}xh{heads}"),
        Shape::seq(seq_len, d_model),
    );
    for i in 0..layers {
        b.push(
            LayerKind::SelfAttention { heads, d_model },
            format!("SelfAttention {i}"),
        );
        b.push(LayerKind::LayerNorm, format!("LayerNorm {i}"));
    }
    b.push(
        LayerKind::FullyConnected {
            in_features: seq_len * d_model,
            out_features: classes,
        },
        format!("FC, {classes}"),
    );
    b.softmax();
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use karma_graph::MemoryParams;

    #[test]
    fn lstm_classifier_validates_with_expected_costs() {
        let g = lstm_classifier(64, 32, 128, 3, 10);
        g.validate().unwrap();
        // 3 LSTM layers: first (32->128), then two (128->128).
        let p = |d: u64, h: u64| 4 * (d * h + h * h + h);
        assert_eq!(
            g.total_params(),
            p(32, 128) + 2 * p(128, 128) + (64 * 128 * 10 + 10)
        );
        // Per paper III-C.5: gate GEMMs + 20|Y| per step.
        let lstm = &g.layers[1];
        let per_step = 4.0 * (32.0 * 128.0 + 128.0 * 128.0) * 2.0 + 20.0 * 128.0;
        assert!((lstm.forward_flops(1) - 64.0 * per_step).abs() < 1.0);
    }

    #[test]
    fn attention_encoder_validates_and_is_plannable() {
        let g = attention_encoder(64, 128, 4, 4, 10);
        g.validate().unwrap();
        assert!(g.is_linear());
        // Attention workspace is quadratic in sequence length.
        let m = g.memory(2, &MemoryParams::exact());
        assert!(m.workspace >= 4 * (64 * 64 * 4 * 2) as u64);
    }

    #[test]
    fn rnn_models_plan_out_of_core() {
        use karma_core::planner::{Karma, KarmaOptions};
        use karma_hw::{GpuSpec, LinkSpec, NodeSpec};
        let g = lstm_classifier(128, 64, 256, 4, 10);
        let mem = MemoryParams::exact();
        // LSTMs are weight-heavy at this scale: keep the full model state
        // resident (single-GPU KARMA semantics) and squeeze activations.
        // With split boundary returns the capacity rule can defer a fetch
        // that would not fit to the block's own backward step, so the
        // working-set floor is roughly one block plus its neighbour's
        // boundary — about a third of the activation footprint here,
        // down from the ~half that riding every fetch one step early
        // used to force.
        let state = g.memory(8, &mem).model_state() as f64;
        let acts = (g.peak_footprint(8, &mem) as f64 - state).max(1.0);
        let node = NodeSpec::toy(
            GpuSpec::toy((state * 1.05 + acts * 0.35) as u64, 5.0e9),
            LinkSpec::toy(3.0e8),
        );
        let plan = Karma::new(node, mem)
            .plan(&g, 8, &KarmaOptions::fast(9))
            .unwrap();
        assert!(plan.metrics.capacity_ok);
        assert!(
            plan.capacity_plan
                .plan
                .count(karma_core::plan::OpKind::SwapOut)
                > 0
                || plan
                    .capacity_plan
                    .plan
                    .count(karma_core::plan::OpKind::Recompute)
                    > 0
        );
    }
}

//! GPU ("near memory" device) specification.

use serde::{Deserialize, Serialize};

use crate::{gb_per_s, tflops, GIB};

/// A discrete accelerator with dedicated ("near") memory.
///
/// The planner treats the device as a throughput machine: a peak FLOP rate
/// derated by an achievable-efficiency factor (DL kernels do not reach peak),
/// a memory capacity, and a local memory bandwidth that bounds swap staging
/// (the `TNM` term in Eq. 4 of the paper).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Human-readable name, e.g. `"V100-SXM2-16GB"`.
    pub name: String,
    /// Dedicated device memory in bytes.
    pub memory_bytes: u64,
    /// Fraction of `memory_bytes` usable for tensors. The remainder models
    /// CUDA context, cuDNN workspaces and allocator fragmentation that the
    /// paper measures with NVIDIA profiling tools (Sec. III-D).
    pub usable_fraction: f64,
    /// Peak single-precision throughput in FLOP/s.
    pub peak_flops: f64,
    /// Average achievable fraction of peak for DL kernels (GEMM-heavy ~0.55,
    /// memory-bound layers much lower; this is the *aggregate* derating used
    /// when a finer per-layer efficiency is not supplied).
    pub efficiency: f64,
    /// Device (near) memory bandwidth in bytes/s, bounding on-device staging.
    pub mem_bandwidth: f64,
}

impl GpuSpec {
    /// NVIDIA V100 SXM2 16 GiB as deployed in ABCI (paper Table II).
    ///
    /// The paper's device-query metadata lists 14.7 TFLOPS; HBM2 bandwidth is
    /// 900 GB/s. The default efficiency of 0.55 reproduces the paper's
    /// in-core ResNet-50 throughput ballpark on the simulator substrate.
    pub fn v100_16gb() -> Self {
        GpuSpec {
            name: "V100-SXM2-16GB".to_owned(),
            memory_bytes: 16 * GIB,
            usable_fraction: 0.92,
            peak_flops: tflops(14.7),
            efficiency: 0.55,
            mem_bandwidth: gb_per_s(900),
        }
    }

    /// V100 with 32 GiB of HBM2 (the larger SXM2 variant mentioned in the
    /// paper's discussion of Megatron-LM minimum GPU counts).
    pub fn v100_32gb() -> Self {
        GpuSpec {
            name: "V100-SXM2-32GB".to_owned(),
            memory_bytes: 32 * GIB,
            ..Self::v100_16gb()
        }
    }

    /// A deliberately tiny device used by unit tests so that out-of-core
    /// behaviour triggers at laptop scale.
    pub fn toy(memory_bytes: u64, flops: f64) -> Self {
        GpuSpec {
            name: "toy".to_owned(),
            memory_bytes,
            usable_fraction: 1.0,
            peak_flops: flops,
            efficiency: 1.0,
            mem_bandwidth: flops, // 1 B/s per FLOP/s: irrelevant for toys
        }
    }

    /// Bytes of device memory available to tensor data (`Capacity` in the
    /// paper's constraint 9.4).
    #[inline]
    pub fn usable_bytes(&self) -> u64 {
        (self.memory_bytes as f64 * self.usable_fraction) as u64
    }

    /// Effective sustained FLOP/s after derating.
    #[inline]
    pub fn effective_flops(&self) -> f64 {
        self.peak_flops * self.efficiency
    }

    /// Time to execute `flops` floating point operations, in seconds, under
    /// the aggregate efficiency model.
    #[inline]
    pub fn compute_time(&self, flops: f64) -> f64 {
        flops / self.effective_flops()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v100_matches_table_ii() {
        let g = GpuSpec::v100_16gb();
        assert_eq!(g.memory_bytes, 16 * GIB);
        assert!((g.peak_flops - 14.7e12).abs() < 1.0);
        assert!(g.usable_bytes() < g.memory_bytes);
        assert!(g.usable_bytes() > 14 * GIB);
    }

    #[test]
    fn compute_time_scales_linearly() {
        let g = GpuSpec::v100_16gb();
        let t1 = g.compute_time(1.0e12);
        let t2 = g.compute_time(2.0e12);
        assert!((t2 / t1 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn toy_device_is_fully_usable() {
        let g = GpuSpec::toy(1000, 10.0);
        assert_eq!(g.usable_bytes(), 1000);
        assert_eq!(g.effective_flops(), 10.0);
    }

    #[test]
    fn v100_32gb_doubles_capacity_only() {
        let a = GpuSpec::v100_16gb();
        let b = GpuSpec::v100_32gb();
        assert_eq!(b.memory_bytes, 2 * a.memory_bytes);
        assert_eq!(b.peak_flops, a.peak_flops);
    }
}

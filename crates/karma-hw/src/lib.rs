//! Hardware descriptions for the KARMA reproduction.
//!
//! The KARMA paper (Wahib et al., SC '20) evaluates on the ABCI supercomputer
//! (Table II): NVIDIA V100 SXM2 GPUs (16 GiB), PCIe Gen3 x16 host links,
//! NVLink GPU-GPU links and dual-rail EDR InfiniBand between nodes. This crate
//! captures those quantities as plain data types consumed by the simulator
//! (`karma-sim`), the planner (`karma-core`) and the distributed cost models
//! (`karma-dist`).
//!
//! All bandwidths are stored in **bytes per second** and all capacities in
//! **bytes** so that downstream arithmetic never mixes units. Helper
//! constructors accept the more conventional GB/s / GiB figures.

pub mod cluster;
pub mod gpu;
pub mod link;
pub mod node;

pub use cluster::ClusterSpec;
pub use gpu::GpuSpec;
pub use link::LinkSpec;
pub use node::{CpuSpec, MemoryTierSpec, NodeSpec};

/// Bytes in one KiB.
pub const KIB: u64 = 1024;
/// Bytes in one MiB.
pub const MIB: u64 = 1024 * KIB;
/// Bytes in one GiB.
pub const GIB: u64 = 1024 * MIB;

/// Convert gigabytes-per-second (decimal, as vendors quote) to bytes/s.
#[inline]
pub const fn gb_per_s(gb: u64) -> f64 {
    (gb * 1_000_000_000) as f64
}

/// Convert teraflops to flop/s.
#[inline]
pub const fn tflops(tf: f64) -> f64 {
    tf * 1.0e12
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_conversions_are_consistent() {
        assert_eq!(GIB, 1024 * 1024 * 1024);
        assert_eq!(gb_per_s(16), 16.0e9);
        assert_eq!(tflops(14.7), 14.7e12);
    }
}

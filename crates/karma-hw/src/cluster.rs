//! Cluster-level topology: many nodes over a system interconnect.

use serde::{Deserialize, Serialize};

use crate::{LinkSpec, NodeSpec};

/// A homogeneous cluster of [`NodeSpec`]s joined by `system_link`
/// (InfiniBand on ABCI). Total GPU count is `nodes * gpus_per_node`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Per-node hardware.
    pub node: NodeSpec,
    /// Number of nodes.
    pub nodes: usize,
    /// Inter-node network link.
    pub system_link: LinkSpec,
}

impl ClusterSpec {
    /// The ABCI supercomputer (paper Table II): 1,088 nodes × 4 V100s with
    /// dual-rail EDR InfiniBand. `nodes` selects the allocation size.
    pub fn abci(nodes: usize) -> Self {
        assert!(nodes >= 1, "a cluster needs at least one node");
        ClusterSpec {
            node: NodeSpec::abci(),
            nodes,
            system_link: LinkSpec::infiniband_edr_x2(),
        }
    }

    /// An ABCI allocation sized to provide exactly `gpus` GPUs.
    pub fn abci_with_gpus(gpus: usize) -> Self {
        let node = NodeSpec::abci();
        let nodes = gpus.div_ceil(node.gpus_per_node).max(1);
        ClusterSpec {
            node,
            nodes,
            system_link: LinkSpec::infiniband_edr_x2(),
        }
    }

    /// Total GPU count.
    #[inline]
    pub fn total_gpus(&self) -> usize {
        self.nodes * self.node.gpus_per_node
    }

    /// The slowest link a ring allreduce across all GPUs must traverse:
    /// the system link if more than one node participates, else NVLink.
    pub fn allreduce_bottleneck(&self) -> &LinkSpec {
        if self.nodes > 1 {
            &self.system_link
        } else {
            &self.node.peer_link
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abci_gpu_counts() {
        assert_eq!(ClusterSpec::abci(512).total_gpus(), 2048);
        assert_eq!(ClusterSpec::abci_with_gpus(2048).nodes, 512);
        assert_eq!(ClusterSpec::abci_with_gpus(1).total_gpus(), 4);
    }

    #[test]
    fn single_node_allreduce_uses_nvlink() {
        let c = ClusterSpec::abci(1);
        assert_eq!(c.allreduce_bottleneck().name, "NVLink");
        let c = ClusterSpec::abci(2);
        assert_eq!(c.allreduce_bottleneck().name, "IB-EDR-x2");
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        let _ = ClusterSpec::abci(0);
    }
}

//! Node-level hardware: CPU ("far memory" host) and the node assembly.

use serde::{Deserialize, Serialize};

use crate::{gb_per_s, tflops, GpuSpec, LinkSpec, GIB};

/// Host CPU specification: the "far memory" side of the swap pipeline and,
/// for data-parallel KARMA, the place where weight updates execute
/// (Sec. III-G stage 5 of the pipeline).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpuSpec {
    /// Human-readable name.
    pub name: String,
    /// Host DRAM capacity in bytes (far memory).
    pub memory_bytes: u64,
    /// Host DRAM bandwidth in bytes/s (the `TFM` term of Eq. 4).
    pub mem_bandwidth: f64,
    /// Sustained host FLOP/s available for optimizer (weight update) kernels.
    /// Updates are streaming AXPY-like kernels, so this is bandwidth-derived
    /// in practice; we expose it directly so the cost model stays explicit.
    pub update_flops: f64,
}

impl CpuSpec {
    /// Dual Intel Xeon Gold 6148 with 384 GiB (ABCI compute node, Table II
    /// lists 32 GiB × 6 per socket × 2).
    pub fn xeon_gold_6148_x2() -> Self {
        CpuSpec {
            name: "Xeon-Gold-6148-x2".to_owned(),
            memory_bytes: 384 * GIB,
            mem_bandwidth: gb_per_s(200),
            update_flops: tflops(0.6),
        }
    }

    /// A toy host with the given update throughput; infinite memory.
    pub fn toy(update_flops: f64) -> Self {
        CpuSpec {
            name: "toy-cpu".to_owned(),
            memory_bytes: u64::MAX,
            mem_bandwidth: f64::INFINITY,
            update_flops,
        }
    }

    /// Seconds to apply an SGD-style update to `params` parameters.
    ///
    /// Plain SGD costs 2 FLOPs per parameter (`w -= lr * g`); momentum ~5,
    /// Adam ~12. `flops_per_param` selects the optimizer intensity.
    #[inline]
    pub fn update_time(&self, params: u64, flops_per_param: f64) -> f64 {
        params as f64 * flops_per_param / self.update_flops
    }
}

/// One level of the far-memory hierarchy: where swapped payloads park,
/// with its own capacity and bandwidth. A ZeRO-Infinity-style offload
/// stack (Rajbhandari et al. 2021) orders tiers fastest-first — host
/// DRAM, then NVMe — and "Beyond the Memory Wall" (Kwon & Rhu) argues
/// the cost model must price each level explicitly rather than assume a
/// single uniform pool.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemoryTierSpec {
    /// Human-readable name.
    pub name: String,
    /// Tier capacity in bytes.
    pub capacity_bytes: u64,
    /// Sustained tier bandwidth in bytes/s (replaces the `TFM` term of
    /// Eq. 4 when a swap routes through this tier).
    pub bandwidth: f64,
}

impl MemoryTierSpec {
    /// The host-DRAM tier of `cpu`: the classic KARMA far memory.
    pub fn host_dram(cpu: &CpuSpec) -> Self {
        MemoryTierSpec {
            name: format!("{}-dram", cpu.name),
            capacity_bytes: cpu.memory_bytes,
            bandwidth: cpu.mem_bandwidth,
        }
    }

    /// A node-local NVMe tier (ABCI compute nodes carry a 1.6 TB NVMe
    /// SSD; ~3 GB/s sustained is typical for that generation).
    pub fn nvme() -> Self {
        MemoryTierSpec {
            name: "nvme".to_owned(),
            capacity_bytes: 1600 * GIB,
            bandwidth: gb_per_s(3),
        }
    }

    /// A toy tier for tests.
    pub fn toy(capacity_bytes: u64, bandwidth: f64) -> Self {
        MemoryTierSpec {
            name: "toy-tier".to_owned(),
            capacity_bytes,
            bandwidth,
        }
    }
}

/// A compute node: one host plus `gpus_per_node` identical accelerators
/// connected by `host_link` (PCIe) and `peer_link` (NVLink).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeSpec {
    /// Host CPU / far-memory description.
    pub cpu: CpuSpec,
    /// Accelerator description (all GPUs in a node are identical).
    pub gpu: GpuSpec,
    /// Number of GPUs in the node.
    pub gpus_per_node: usize,
    /// CPU↔GPU link (swap path).
    pub host_link: LinkSpec,
    /// GPU↔GPU link within the node.
    pub peer_link: LinkSpec,
}

impl NodeSpec {
    /// An ABCI compute node: 4× V100 SXM2 16 GiB, PCIe Gen3 x16 to host,
    /// NVLink between GPUs (paper Table II).
    pub fn abci() -> Self {
        NodeSpec {
            cpu: CpuSpec::xeon_gold_6148_x2(),
            gpu: GpuSpec::v100_16gb(),
            gpus_per_node: 4,
            host_link: LinkSpec::pcie_gen3_x16(),
            peer_link: LinkSpec::nvlink(),
        }
    }

    /// A single-GPU toy node for tests.
    pub fn toy(gpu: GpuSpec, host_link: LinkSpec) -> Self {
        NodeSpec {
            cpu: CpuSpec::toy(1.0e9),
            gpu,
            gpus_per_node: 1,
            host_link,
            peer_link: LinkSpec::infinite(),
        }
    }

    /// The swap-in throughput bound of Eq. 4:
    /// `Tswap-in = min { TFM, TNM, TIC }`.
    pub fn swap_throughput(&self) -> f64 {
        self.cpu
            .mem_bandwidth
            .min(self.gpu.mem_bandwidth)
            .min(self.host_link.bandwidth)
    }

    /// Eq. 4 with `tier`'s bandwidth in the far-memory slot: the swap
    /// throughput of a transfer that parks in `tier` instead of host
    /// DRAM.
    pub fn tier_swap_throughput(&self, tier: &MemoryTierSpec) -> f64 {
        tier.bandwidth
            .min(self.gpu.mem_bandwidth)
            .min(self.host_link.bandwidth)
    }

    /// Slowdown of swapping through `tier` relative to the node's
    /// baseline far memory (>= 1 for tiers slower than host DRAM). This
    /// factor scales a plan's `Sout`/`Sin` durations in the simulator
    /// (`karma-core::lower::LowerOptions::tier_swap_factor`) and picks
    /// the executed `TierStack`'s per-transfer copy-pass count.
    pub fn tier_swap_factor(&self, tier: &MemoryTierSpec) -> f64 {
        self.swap_throughput() / self.tier_swap_throughput(tier)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abci_node_has_four_v100s() {
        let n = NodeSpec::abci();
        assert_eq!(n.gpus_per_node, 4);
        assert_eq!(n.gpu.memory_bytes, 16 * GIB);
    }

    #[test]
    fn swap_throughput_is_min_of_three() {
        // On ABCI the PCIe link is the bottleneck.
        let n = NodeSpec::abci();
        assert_eq!(n.swap_throughput(), n.host_link.bandwidth);

        // With an infinite link the host DRAM becomes the bound.
        let mut fast = n.clone();
        fast.host_link = LinkSpec::infinite();
        assert_eq!(fast.swap_throughput(), fast.cpu.mem_bandwidth);
    }

    #[test]
    fn sgd_update_time_counts_two_flops_per_param() {
        let c = CpuSpec::toy(100.0);
        assert!((c.update_time(50, 2.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tier_swap_factor_prices_slower_tiers_above_one() {
        let n = NodeSpec::abci();
        let dram = MemoryTierSpec::host_dram(&n.cpu);
        // Host DRAM is the baseline: no slowdown.
        assert_eq!(n.tier_swap_factor(&dram), 1.0);
        // NVMe is slower than the PCIe link, so it becomes the bound.
        let nvme = MemoryTierSpec::nvme();
        let f = n.tier_swap_factor(&nvme);
        assert!(f > 1.0, "NVMe must be priced above DRAM, got {f}");
        assert_eq!(n.tier_swap_throughput(&nvme), nvme.bandwidth);
        // A tier faster than every other bound changes nothing.
        let fast = MemoryTierSpec::toy(GIB, f64::INFINITY);
        assert_eq!(n.tier_swap_factor(&fast), 1.0);
    }
}

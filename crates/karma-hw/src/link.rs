//! Interconnect ("far memory" ↔ "near memory" and inter-node) links.

use serde::{Deserialize, Serialize};

use crate::gb_per_s;

/// A bidirectional point-to-point link with an α–β cost model.
///
/// Transfer time of `n` bytes is `latency + n / bandwidth`. The paper assumes
/// the CPU↔GPU interconnect is bidirectional (PCIe or NVLink), which lets
/// swap-out overlap swap-in; the simulator models each direction as an
/// independent lane of this bandwidth.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkSpec {
    /// Human-readable name.
    pub name: String,
    /// Per-direction bandwidth in bytes/s.
    pub bandwidth: f64,
    /// One-way latency in seconds.
    pub latency: f64,
}

impl LinkSpec {
    /// PCI-Express Gen3 x16: 16 GB/s per direction (paper Table II).
    pub fn pcie_gen3_x16() -> Self {
        LinkSpec {
            name: "PCIe-Gen3-x16".to_owned(),
            bandwidth: gb_per_s(16),
            latency: 5.0e-6,
        }
    }

    /// NVLink (V100 generation): 50 GB/s per direction (paper Table II).
    pub fn nvlink() -> Self {
        LinkSpec {
            name: "NVLink".to_owned(),
            bandwidth: gb_per_s(50),
            latency: 2.0e-6,
        }
    }

    /// Dual-rail 100 Gbps EDR InfiniBand: 12.5 GB/s aggregate (Table II).
    pub fn infiniband_edr_x2() -> Self {
        LinkSpec {
            name: "IB-EDR-x2".to_owned(),
            bandwidth: gb_per_s(12) + gb_per_s(1) / 2.0,
            latency: 1.0e-6,
        }
    }

    /// A link so fast it never bottlenecks — useful for isolating compute
    /// effects in tests and ablations.
    pub fn infinite() -> Self {
        LinkSpec {
            name: "infinite".to_owned(),
            bandwidth: f64::INFINITY,
            latency: 0.0,
        }
    }

    /// A toy link with the given bandwidth (bytes/s) and zero latency.
    pub fn toy(bandwidth: f64) -> Self {
        LinkSpec {
            name: "toy-link".to_owned(),
            bandwidth,
            latency: 0.0,
        }
    }

    /// α–β transfer time for `bytes` over this link, in seconds.
    #[inline]
    pub fn transfer_time(&self, bytes: u64) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        self.latency + bytes as f64 / self.bandwidth
    }

    /// Effective achieved bandwidth for a message of `bytes` (bytes/s),
    /// accounting for latency amortization.
    #[inline]
    pub fn effective_bandwidth(&self, bytes: u64) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        bytes as f64 / self.transfer_time(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pcie_matches_table_ii() {
        let l = LinkSpec::pcie_gen3_x16();
        assert_eq!(l.bandwidth, 16.0e9);
    }

    #[test]
    fn transfer_time_is_alpha_beta() {
        let l = LinkSpec::toy(100.0);
        assert_eq!(l.transfer_time(0), 0.0);
        assert!((l.transfer_time(200) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn effective_bandwidth_below_peak_for_small_messages() {
        let l = LinkSpec::pcie_gen3_x16();
        assert!(l.effective_bandwidth(4 * 1024) < l.bandwidth);
        // Large messages amortize latency.
        let big = 1 << 30;
        assert!(l.effective_bandwidth(big) > 0.99 * l.bandwidth);
    }

    #[test]
    fn infinite_link_is_instant() {
        let l = LinkSpec::infinite();
        assert_eq!(l.transfer_time(u64::MAX), 0.0);
    }
}

//! Exact dynamic programming for contiguous partition problems.
//!
//! When a partition objective decomposes as a sum of per-block costs
//! `w(i, j)` over blocks `[i, j)`, the optimal partition is computable in
//! `O(n²)` — this is the classical interval-partition DP. KARMA's full
//! occupancy objective is *not* separable (overlap couples adjacent blocks),
//! but a separable surrogate (compute/transfer imbalance per block) is an
//! excellent seed for the ACO and the exact optimum for the surrogate is a
//! useful ablation datum (experiment X2 in DESIGN.md).

/// Find the minimum-total-cost partition of `0..n` into contiguous blocks.
///
/// `cost(i, j)` returns the cost of block `[i, j)` or `None` if that block
/// is infeasible (e.g. exceeds device capacity — constraint 9.4).
/// Returns the block start boundaries and the total cost, or `None` when no
/// feasible partition exists.
pub fn optimal_partition(
    n: usize,
    cost: impl Fn(usize, usize) -> Option<f64>,
) -> Option<(Vec<usize>, f64)> {
    assert!(n > 0, "cannot partition zero layers");
    // best[j] = minimal cost of partitioning 0..j.
    let mut best = vec![f64::INFINITY; n + 1];
    let mut back = vec![usize::MAX; n + 1];
    best[0] = 0.0;
    for j in 1..=n {
        for i in 0..j {
            if best[i].is_finite() {
                if let Some(w) = cost(i, j) {
                    let c = best[i] + w;
                    if c < best[j] {
                        best[j] = c;
                        back[j] = i;
                    }
                }
            }
        }
    }
    if !best[n].is_finite() {
        return None;
    }
    let mut bounds = Vec::new();
    let mut j = n;
    while j > 0 {
        let i = back[j];
        bounds.push(i);
        j = i;
    }
    bounds.reverse();
    Some((bounds, best[n]))
}

/// Like [`optimal_partition`] but with an exact block-count `k` (used by the
/// gradient-checkpointing baseline: √N segments).
pub fn optimal_partition_k(
    n: usize,
    k: usize,
    cost: impl Fn(usize, usize) -> Option<f64>,
) -> Option<(Vec<usize>, f64)> {
    assert!(n > 0 && k > 0 && k <= n, "invalid n={n}, k={k}");
    // best[b][j] = min cost of covering 0..j with exactly b blocks.
    let mut best = vec![vec![f64::INFINITY; n + 1]; k + 1];
    let mut back = vec![vec![usize::MAX; n + 1]; k + 1];
    best[0][0] = 0.0;
    for b in 1..=k {
        for j in b..=n {
            for i in (b - 1)..j {
                if best[b - 1][i].is_finite() {
                    if let Some(w) = cost(i, j) {
                        let c = best[b - 1][i] + w;
                        if c < best[b][j] {
                            best[b][j] = c;
                            back[b][j] = i;
                        }
                    }
                }
            }
        }
    }
    if !best[k][n].is_finite() {
        return None;
    }
    let mut bounds = Vec::with_capacity(k);
    let (mut b, mut j) = (k, n);
    while b > 0 {
        let i = back[b][j];
        bounds.push(i);
        j = i;
        b -= 1;
    }
    bounds.reverse();
    Some((bounds, best[k][n]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_costs_prefer_one_block_when_block_cost_is_constant() {
        // cost = 1 per block regardless of extent -> one block optimal.
        let (bounds, c) = optimal_partition(10, |_, _| Some(1.0)).unwrap();
        assert_eq!(bounds, vec![0]);
        assert_eq!(c, 1.0);
    }

    #[test]
    fn capacity_infeasibility_forces_splits() {
        // Blocks longer than 3 layers are infeasible; cost 1 per block.
        let (bounds, c) = optimal_partition(10, |i, j| (j - i <= 3).then_some(1.0)).unwrap();
        assert_eq!(c, 4.0); // ceil(10/3)
        assert_eq!(bounds[0], 0);
        assert_eq!(bounds.len(), 4);
    }

    #[test]
    fn quadratic_cost_balances_blocks() {
        // cost = (len)^2: optimum is as many singleton blocks as possible.
        let (bounds, c) = optimal_partition(6, |i, j| Some(((j - i) * (j - i)) as f64)).unwrap();
        assert_eq!(bounds, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(c, 6.0);
    }

    #[test]
    fn no_feasible_partition_returns_none() {
        assert!(optimal_partition(5, |_, _| None).is_none());
        // Blocks of exactly 2 can't tile 5 layers.
        assert!(optimal_partition(5, |i, j| (j - i == 2).then_some(1.0)).is_none());
    }

    #[test]
    fn fixed_k_partition_balances_weighted_load() {
        // Weights 1..=6, k = 3, cost = (sum of block weights)^2.
        let w = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let block_cost = |i: usize, j: usize| Some(w[i..j].iter().sum::<f64>().powi(2));
        let (bounds, _) = optimal_partition_k(6, 3, block_cost).unwrap();
        // Balanced split: [1,2,3][4,5][6] -> sums 6,9,6.
        assert_eq!(bounds, vec![0, 3, 5]);
    }

    #[test]
    fn k_equals_n_gives_singletons() {
        let (bounds, _) = optimal_partition_k(4, 4, |_, _| Some(1.0)).unwrap();
        assert_eq!(bounds, vec![0, 1, 2, 3]);
    }

    #[test]
    fn k_partition_infeasible_when_blocks_capped() {
        // Max block length 1 but only k=2 blocks for n=4: infeasible.
        assert!(optimal_partition_k(4, 2, |i, j| (j - i == 1).then_some(1.0)).is_none());
    }

    #[test]
    #[should_panic(expected = "invalid")]
    fn k_larger_than_n_rejected() {
        let _ = optimal_partition_k(3, 5, |_, _| Some(1.0));
    }
}

//! Mixed-integer ant colony optimization — the MIDACO substitute.
//!
//! MIDACO (Schlüter et al., paper refs \[37\]\[38\]) extends ACO to mixed-integer
//! non-convex programs by sampling each variable from a multi-kernel Gaussian
//! probability density centred on an archive of elite solutions, with an
//! oracle penalty for constraints. This module implements that scheme for
//! pure-integer problems (all of KARMA's decision variables are integers):
//!
//! * a solution archive of `k` elites ordered by the oracle criterion;
//! * per-variable sampling: pick an elite kernel (weighted towards better
//!   ranks), then sample a discretized Gaussian around its value with a
//!   deviation that shrinks as the archive converges;
//! * uniform exploration with probability `explore`.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::problem::{Problem, Solution};

/// ACO hyper-parameters.
#[derive(Debug, Clone)]
pub struct AcoConfig {
    /// Archive (elite kernel) size.
    pub archive: usize,
    /// Ants sampled per generation.
    pub ants: usize,
    /// Generations.
    pub generations: usize,
    /// Probability of uniform resampling of a variable (exploration).
    pub explore: f64,
    /// Kernel selection bias: weight of rank `r` is `q^r` (0 < q <= 1).
    pub rank_decay: f64,
    /// Deviation multiplier on the archive spread per variable.
    pub xi: f64,
    /// RNG seed (deterministic runs; vary for restarts).
    pub seed: u64,
}

impl AcoConfig {
    /// Defaults sized for planner problems (hundreds of binary variables).
    pub fn planner(seed: u64) -> Self {
        AcoConfig {
            archive: 12,
            ants: 48,
            generations: 220,
            explore: 0.02,
            rank_decay: 0.75,
            xi: 0.9,
            seed,
        }
    }

    /// Small/fast settings for unit tests.
    pub fn fast(seed: u64) -> Self {
        AcoConfig {
            archive: 8,
            ants: 24,
            generations: 120,
            explore: 0.05,
            rank_decay: 0.7,
            xi: 0.85,
            seed,
        }
    }
}

/// The optimizer.
#[derive(Debug, Clone)]
pub struct Aco {
    cfg: AcoConfig,
}

impl Aco {
    /// Create an optimizer with the given configuration.
    pub fn new(cfg: AcoConfig) -> Self {
        assert!(cfg.archive >= 2, "archive must hold at least 2 elites");
        assert!(cfg.ants >= 1 && cfg.generations >= 1);
        Aco { cfg }
    }

    /// Minimize `p`, returning the best solution found.
    pub fn minimize<P: Problem>(&self, p: &P) -> Solution {
        let n = p.dims();
        assert!(n > 0, "problem has no variables");
        let mut rng = ChaCha8Rng::seed_from_u64(self.cfg.seed);

        // Initial archive: seeds (clamped) + uniform random candidates.
        let mut archive: Vec<Solution> = Vec::with_capacity(self.cfg.archive);
        for seed in p.seeds() {
            let x = clamp_to_bounds(p, &seed);
            let eval = p.evaluate(&x);
            archive.push(Solution { x, eval });
        }
        while archive.len() < self.cfg.archive {
            let x: Vec<i64> = (0..n)
                .map(|i| {
                    let (lo, hi) = p.bounds(i);
                    rng.gen_range(lo..=hi)
                })
                .collect();
            let eval = p.evaluate(&x);
            archive.push(Solution { x, eval });
        }
        sort_archive(&mut archive);
        archive.truncate(self.cfg.archive);

        let mut scratch = vec![0i64; n];
        for _gen in 0..self.cfg.generations {
            for _ant in 0..self.cfg.ants {
                self.sample(p, &archive, &mut scratch, &mut rng);
                let eval = p.evaluate(&scratch);
                if eval.better_than(&archive.last().unwrap().eval) {
                    let sol = Solution {
                        x: scratch.clone(),
                        eval,
                    };
                    // Keep the archive duplicate-free to preserve diversity.
                    if !archive.iter().any(|s| s.x == sol.x) {
                        *archive.last_mut().unwrap() = sol;
                        sort_archive(&mut archive);
                    }
                }
            }
        }
        archive.into_iter().next().unwrap()
    }

    /// Sample one ant into `out`.
    fn sample<P: Problem>(
        &self,
        p: &P,
        archive: &[Solution],
        out: &mut [i64],
        rng: &mut ChaCha8Rng,
    ) {
        let k = archive.len();
        for (i, slot) in out.iter_mut().enumerate() {
            let (lo, hi) = p.bounds(i);
            if rng.gen_bool(self.cfg.explore) {
                *slot = rng.gen_range(lo..=hi);
                continue;
            }
            // Rank-weighted kernel selection: weight(r) = rank_decay^r.
            let pick = {
                let u: f64 = rng.gen();
                let q = self.cfg.rank_decay;
                // Inverse CDF of the truncated geometric distribution.
                let norm: f64 = (0..k).map(|r| q.powi(r as i32)).sum();
                let mut acc = 0.0;
                let mut chosen = k - 1;
                for r in 0..k {
                    acc += q.powi(r as i32) / norm;
                    if u <= acc {
                        chosen = r;
                        break;
                    }
                }
                chosen
            };
            let centre = archive[pick].x[i];
            // Spread: mean absolute distance of archive values to centre.
            let spread: f64 = archive
                .iter()
                .map(|s| (s.x[i] - centre).abs() as f64)
                .sum::<f64>()
                / k as f64;
            let sigma = (self.cfg.xi * spread).max(0.5);
            // Discretized Gaussian via the sum-of-uniforms approximation.
            let g: f64 = (0..12).map(|_| rng.gen::<f64>()).sum::<f64>() - 6.0;
            let v = (centre as f64 + g * sigma).round() as i64;
            *slot = v.clamp(lo, hi);
        }
    }
}

fn sort_archive(archive: &mut [Solution]) {
    archive.sort_by(|a, b| {
        if a.eval.better_than(&b.eval) {
            std::cmp::Ordering::Less
        } else if b.eval.better_than(&a.eval) {
            std::cmp::Ordering::Greater
        } else {
            std::cmp::Ordering::Equal
        }
    });
}

fn clamp_to_bounds<P: Problem>(p: &P, x: &[i64]) -> Vec<i64> {
    (0..p.dims())
        .map(|i| {
            let (lo, hi) = p.bounds(i);
            x.get(i).copied().unwrap_or(lo).clamp(lo, hi)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Evaluation;

    /// One-max over binary variables: maximize ones == minimize zeros.
    struct OneMax {
        n: usize,
    }
    impl Problem for OneMax {
        fn dims(&self) -> usize {
            self.n
        }
        fn bounds(&self, _: usize) -> (i64, i64) {
            (0, 1)
        }
        fn evaluate(&self, x: &[i64]) -> Evaluation {
            Evaluation {
                objective: x.iter().filter(|&&v| v == 0).count() as f64,
                violation: 0.0,
            }
        }
    }

    /// A rugged objective with a constraint on the sum.
    struct Knapsackish;
    impl Problem for Knapsackish {
        fn dims(&self) -> usize {
            8
        }
        fn bounds(&self, _: usize) -> (i64, i64) {
            (0, 5)
        }
        fn evaluate(&self, x: &[i64]) -> Evaluation {
            let value: i64 = x.iter().enumerate().map(|(i, &v)| (i as i64 + 1) * v).sum();
            let weight: i64 = x.iter().sum();
            Evaluation {
                objective: -(value as f64),
                violation: (weight - 12).max(0) as f64,
            }
        }
    }

    #[test]
    fn one_max_solved_to_optimality() {
        let p = OneMax { n: 40 };
        let best = Aco::new(AcoConfig::planner(7)).minimize(&p);
        assert_eq!(best.eval.objective, 0.0, "best: {:?}", best.x);
    }

    #[test]
    fn constrained_optimum_found() {
        // Optimum: put all 12 units of weight at the highest-value index
        // (i = 7, value 8/unit), capped at 5 per var: x7=5, x6=5, x5=2 ->
        // value 40+35+12 = 87.
        let best = Aco::new(AcoConfig::planner(3)).minimize(&Knapsackish);
        assert_eq!(best.eval.violation, 0.0);
        assert!(
            -best.eval.objective >= 85.0,
            "got value {}",
            -best.eval.objective
        );
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let p = OneMax { n: 20 };
        let a = Aco::new(AcoConfig::fast(11)).minimize(&p);
        let b = Aco::new(AcoConfig::fast(11)).minimize(&p);
        assert_eq!(a.x, b.x);
    }

    #[test]
    fn seeds_are_used_and_clamped() {
        struct Seeded;
        impl Problem for Seeded {
            fn dims(&self) -> usize {
                6
            }
            fn bounds(&self, _: usize) -> (i64, i64) {
                (0, 3)
            }
            fn evaluate(&self, x: &[i64]) -> Evaluation {
                // Narrow optimum exactly at the (clamped) seed.
                let target = [3, 3, 3, 3, 3, 3];
                let d: i64 = x
                    .iter()
                    .zip(target.iter())
                    .map(|(a, b)| (a - b).abs())
                    .sum();
                Evaluation {
                    objective: d as f64,
                    violation: 0.0,
                }
            }
            fn seeds(&self) -> Vec<Vec<i64>> {
                vec![vec![99; 6]] // clamps to all-3s, the optimum
            }
        }
        let mut cfg = AcoConfig::fast(5);
        cfg.generations = 1; // no time to search; must come from the seed
        let best = Aco::new(cfg).minimize(&Seeded);
        assert_eq!(best.eval.objective, 0.0);
    }

    #[test]
    #[should_panic(expected = "no variables")]
    fn zero_dim_problem_rejected() {
        struct Empty;
        impl Problem for Empty {
            fn dims(&self) -> usize {
                0
            }
            fn bounds(&self, _: usize) -> (i64, i64) {
                (0, 0)
            }
            fn evaluate(&self, _: &[i64]) -> Evaluation {
                Evaluation {
                    objective: 0.0,
                    violation: 0.0,
                }
            }
        }
        Aco::new(AcoConfig::fast(1)).minimize(&Empty);
    }
}

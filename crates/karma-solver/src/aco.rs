//! Mixed-integer ant colony optimization — the MIDACO substitute.
//!
//! MIDACO (Schlüter et al., paper refs \[37\]\[38\]) extends ACO to mixed-integer
//! non-convex programs by sampling each variable from a multi-kernel Gaussian
//! probability density centred on an archive of elite solutions, with an
//! oracle penalty for constraints. This module implements that scheme for
//! pure-integer problems (all of KARMA's decision variables are integers):
//!
//! * a solution archive of `k` elites ordered by the oracle criterion;
//! * per-variable sampling: pick an elite kernel (weighted towards better
//!   ranks), then sample a discretized Gaussian around its value with a
//!   deviation that shrinks as the archive converges;
//! * uniform exploration with probability `explore`.
//!
//! # Generation-batched parallel evaluation
//!
//! Each generation is processed in three phases: every ant is **sampled
//! sequentially** from one RNG stream (so a fixed seed fixes the entire
//! search trajectory), the batch is **deduplicated** (against itself and
//! against the archive — duplicate genomes cannot enter the archive, so
//! re-evaluating them is pure waste), and the surviving candidates are
//! **evaluated in parallel** via `rayon`. Results merge into the archive
//! in sampling order, which — evaluation being pure — makes the returned
//! solution bit-identical for any worker-thread count.

use std::collections::HashSet;

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;

use crate::problem::{Evaluation, Problem, Solution};

/// ACO hyper-parameters.
#[derive(Debug, Clone)]
pub struct AcoConfig {
    /// Archive (elite kernel) size.
    pub archive: usize,
    /// Ants sampled per generation.
    pub ants: usize,
    /// Generations.
    pub generations: usize,
    /// Probability of uniform resampling of a variable (exploration).
    pub explore: f64,
    /// Kernel selection bias: weight of rank `r` is `q^r` (0 < q <= 1).
    pub rank_decay: f64,
    /// Deviation multiplier on the archive spread per variable.
    pub xi: f64,
    /// RNG seed (deterministic runs; vary for restarts).
    pub seed: u64,
    /// Drop duplicate genomes (within a generation's batch, and genomes
    /// already in the archive) before evaluation. Duplicates can never
    /// enter the archive, so evaluating them is pure waste; disable only
    /// to reproduce the unoptimized evaluation cost in benchmarks.
    pub dedupe: bool,
}

impl AcoConfig {
    /// Defaults sized for planner problems (hundreds of binary variables).
    pub fn planner(seed: u64) -> Self {
        AcoConfig {
            archive: 12,
            ants: 48,
            generations: 220,
            explore: 0.02,
            rank_decay: 0.75,
            xi: 0.9,
            seed,
            dedupe: true,
        }
    }

    /// Small/fast settings for unit tests.
    pub fn fast(seed: u64) -> Self {
        AcoConfig {
            archive: 8,
            ants: 24,
            generations: 120,
            explore: 0.05,
            rank_decay: 0.7,
            xi: 0.85,
            seed,
            dedupe: true,
        }
    }
}

/// The optimizer.
#[derive(Debug, Clone)]
pub struct Aco {
    cfg: AcoConfig,
}

impl Aco {
    /// Create an optimizer with the given configuration.
    pub fn new(cfg: AcoConfig) -> Self {
        assert!(cfg.archive >= 2, "archive must hold at least 2 elites");
        assert!(cfg.ants >= 1 && cfg.generations >= 1);
        Aco { cfg }
    }

    /// Minimize `p`, returning the best solution found.
    ///
    /// Deterministic for a fixed [`AcoConfig::seed`] independent of the
    /// rayon worker count: sampling consumes one sequential RNG stream and
    /// batch results merge in sampling order (see the module docs).
    pub fn minimize<P: Problem>(&self, p: &P) -> Solution {
        let n = p.dims();
        assert!(n > 0, "problem has no variables");
        let mut rng = ChaCha8Rng::seed_from_u64(self.cfg.seed);

        // Initial archive: seeds (clamped) + uniform random candidates,
        // sampled sequentially, evaluated as one parallel batch.
        let mut initial: Vec<Vec<i64>> = p.seeds().iter().map(|s| clamp_to_bounds(p, s)).collect();
        while initial.len() < self.cfg.archive {
            initial.push(
                (0..n)
                    .map(|i| {
                        let (lo, hi) = p.bounds(i);
                        rng.gen_range(lo..=hi)
                    })
                    .collect(),
            );
        }
        let mut archive = evaluate_batch(p, initial);
        sort_archive(&mut archive);
        archive.truncate(self.cfg.archive);

        // Rank-weighted kernel-selection CDF: weight(r) = rank_decay^r,
        // normalized. Depends only on the (fixed) archive size, so hoist it
        // out of the per-variable sampling loop — the same prefix-sum
        // arithmetic as before, just computed once.
        let kernel_cdf: Vec<f64> = {
            let k = archive.len();
            let q = self.cfg.rank_decay;
            let norm: f64 = (0..k).map(|r| q.powi(r as i32)).sum();
            let mut acc = 0.0;
            (0..k)
                .map(|r| {
                    acc += q.powi(r as i32) / norm;
                    acc
                })
                .collect()
        };

        let mut scratch = vec![0i64; n];
        for _gen in 0..self.cfg.generations {
            // Phase 1: sample the whole generation from the generation-start
            // archive (single sequential RNG stream).
            let mut genomes: Vec<Vec<i64>> = Vec::with_capacity(self.cfg.ants);
            for _ant in 0..self.cfg.ants {
                self.sample(p, &archive, &kernel_cdf, &mut scratch, &mut rng);
                genomes.push(scratch.clone());
            }
            // Phase 2: dedupe, keeping first occurrences in sampling order.
            // Genomes already in the archive are dropped outright — the
            // archive stays duplicate-free, so they can never be inserted.
            let mut seen: HashSet<&[i64]> = HashSet::with_capacity(genomes.len());
            let unique: Vec<&[i64]> = genomes
                .iter()
                .map(Vec::as_slice)
                .filter(|g| {
                    !self.cfg.dedupe || (!archive.iter().any(|s| s.x == *g) && seen.insert(*g))
                })
                .collect();
            // Phase 3: evaluate candidates in parallel (pure), then merge
            // into the archive in the fixed sampling order.
            let evals: Vec<Evaluation> = unique.par_iter().map(|x| p.evaluate(x)).collect();
            for (&x, eval) in unique.iter().zip(evals) {
                if eval.better_than(&archive.last().unwrap().eval)
                    // Earlier merges this generation may have inserted an
                    // identical genome; keep the archive duplicate-free to
                    // preserve diversity.
                    && !archive.iter().any(|s| s.x == x)
                {
                    *archive.last_mut().unwrap() = Solution {
                        x: x.to_vec(),
                        eval,
                    };
                    sort_archive(&mut archive);
                }
            }
        }
        archive.into_iter().next().unwrap()
    }

    /// Sample one ant into `out`. `kernel_cdf` is the precomputed
    /// rank-weighted kernel-selection CDF (see [`Aco::minimize`]).
    fn sample<P: Problem>(
        &self,
        p: &P,
        archive: &[Solution],
        kernel_cdf: &[f64],
        out: &mut [i64],
        rng: &mut ChaCha8Rng,
    ) {
        let k = archive.len();
        for (i, slot) in out.iter_mut().enumerate() {
            let (lo, hi) = p.bounds(i);
            if rng.gen_bool(self.cfg.explore) {
                *slot = rng.gen_range(lo..=hi);
                continue;
            }
            // Rank-weighted kernel selection: inverse CDF of the truncated
            // geometric distribution.
            let pick = {
                let u: f64 = rng.gen();
                let mut chosen = k - 1;
                for (r, &acc) in kernel_cdf.iter().enumerate() {
                    if u <= acc {
                        chosen = r;
                        break;
                    }
                }
                chosen
            };
            let centre = archive[pick].x[i];
            // Spread: mean absolute distance of archive values to centre.
            let spread: f64 = archive
                .iter()
                .map(|s| (s.x[i] - centre).abs() as f64)
                .sum::<f64>()
                / k as f64;
            let sigma = (self.cfg.xi * spread).max(0.5);
            // Discretized Gaussian via the sum-of-uniforms approximation.
            let g: f64 = (0..12).map(|_| rng.gen::<f64>()).sum::<f64>() - 6.0;
            let v = (centre as f64 + g * sigma).round() as i64;
            *slot = v.clamp(lo, hi);
        }
    }
}

/// Evaluate a candidate batch in parallel, preserving input order.
fn evaluate_batch<P: Problem>(p: &P, xs: Vec<Vec<i64>>) -> Vec<Solution> {
    let evals: Vec<Evaluation> = xs.par_iter().map(|x| p.evaluate(x)).collect();
    xs.into_iter()
        .zip(evals)
        .map(|(x, eval)| Solution { x, eval })
        .collect()
}

fn sort_archive(archive: &mut [Solution]) {
    archive.sort_by(|a, b| {
        if a.eval.better_than(&b.eval) {
            std::cmp::Ordering::Less
        } else if b.eval.better_than(&a.eval) {
            std::cmp::Ordering::Greater
        } else {
            std::cmp::Ordering::Equal
        }
    });
}

fn clamp_to_bounds<P: Problem>(p: &P, x: &[i64]) -> Vec<i64> {
    (0..p.dims())
        .map(|i| {
            let (lo, hi) = p.bounds(i);
            x.get(i).copied().unwrap_or(lo).clamp(lo, hi)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Evaluation;

    /// One-max over binary variables: maximize ones == minimize zeros.
    struct OneMax {
        n: usize,
    }
    impl Problem for OneMax {
        fn dims(&self) -> usize {
            self.n
        }
        fn bounds(&self, _: usize) -> (i64, i64) {
            (0, 1)
        }
        fn evaluate(&self, x: &[i64]) -> Evaluation {
            Evaluation {
                objective: x.iter().filter(|&&v| v == 0).count() as f64,
                violation: 0.0,
            }
        }
    }

    /// A rugged objective with a constraint on the sum.
    struct Knapsackish;
    impl Problem for Knapsackish {
        fn dims(&self) -> usize {
            8
        }
        fn bounds(&self, _: usize) -> (i64, i64) {
            (0, 5)
        }
        fn evaluate(&self, x: &[i64]) -> Evaluation {
            let value: i64 = x.iter().enumerate().map(|(i, &v)| (i as i64 + 1) * v).sum();
            let weight: i64 = x.iter().sum();
            Evaluation {
                objective: -(value as f64),
                violation: (weight - 12).max(0) as f64,
            }
        }
    }

    #[test]
    fn one_max_solved_to_optimality() {
        let p = OneMax { n: 40 };
        let best = Aco::new(AcoConfig::planner(7)).minimize(&p);
        assert_eq!(best.eval.objective, 0.0, "best: {:?}", best.x);
    }

    #[test]
    fn constrained_optimum_found() {
        // Optimum: put all 12 units of weight at the highest-value index
        // (i = 7, value 8/unit), capped at 5 per var: x7=5, x6=5, x5=2 ->
        // value 40+35+12 = 87.
        let best = Aco::new(AcoConfig::planner(3)).minimize(&Knapsackish);
        assert_eq!(best.eval.violation, 0.0);
        assert!(
            -best.eval.objective >= 85.0,
            "got value {}",
            -best.eval.objective
        );
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let p = OneMax { n: 20 };
        let a = Aco::new(AcoConfig::fast(11)).minimize(&p);
        let b = Aco::new(AcoConfig::fast(11)).minimize(&p);
        assert_eq!(a.x, b.x);
    }

    #[test]
    fn deterministic_across_thread_counts() {
        // The tentpole guarantee: one worker vs many workers returns the
        // bit-identical best solution (sampling is a single sequential RNG
        // stream; parallel evaluation is pure; merges happen in sampling
        // order). Knapsackish has a rugged landscape, so any divergence in
        // the search trajectory would show up in the decision vector.
        let sequential = {
            rayon::set_num_threads(1);
            Aco::new(AcoConfig::fast(29)).minimize(&Knapsackish)
        };
        let parallel = {
            rayon::set_num_threads(4);
            Aco::new(AcoConfig::fast(29)).minimize(&Knapsackish)
        };
        rayon::set_num_threads(0); // restore auto sizing
        assert_eq!(sequential.x, parallel.x);
        assert_eq!(sequential.eval, parallel.eval);
    }

    #[test]
    fn seeds_are_used_and_clamped() {
        struct Seeded;
        impl Problem for Seeded {
            fn dims(&self) -> usize {
                6
            }
            fn bounds(&self, _: usize) -> (i64, i64) {
                (0, 3)
            }
            fn evaluate(&self, x: &[i64]) -> Evaluation {
                // Narrow optimum exactly at the (clamped) seed.
                let target = [3, 3, 3, 3, 3, 3];
                let d: i64 = x
                    .iter()
                    .zip(target.iter())
                    .map(|(a, b)| (a - b).abs())
                    .sum();
                Evaluation {
                    objective: d as f64,
                    violation: 0.0,
                }
            }
            fn seeds(&self) -> Vec<Vec<i64>> {
                vec![vec![99; 6]] // clamps to all-3s, the optimum
            }
        }
        let mut cfg = AcoConfig::fast(5);
        cfg.generations = 1; // no time to search; must come from the seed
        let best = Aco::new(cfg).minimize(&Seeded);
        assert_eq!(best.eval.objective, 0.0);
    }

    #[test]
    #[should_panic(expected = "no variables")]
    fn zero_dim_problem_rejected() {
        struct Empty;
        impl Problem for Empty {
            fn dims(&self) -> usize {
                0
            }
            fn bounds(&self, _: usize) -> (i64, i64) {
                (0, 0)
            }
            fn evaluate(&self, _: &[i64]) -> Evaluation {
                Evaluation {
                    objective: 0.0,
                    violation: 0.0,
                }
            }
        }
        Aco::new(AcoConfig::fast(1)).minimize(&Empty);
    }
}

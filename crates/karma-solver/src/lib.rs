//! Optimization substrate for the KARMA reproduction.
//!
//! The paper solves its two-tier blocking/recompute problem (Fig. 4) with
//! the proprietary MIDACO solver — a **mixed-integer distributed ant colony
//! optimizer** (paper refs \[37\], \[38\]). This crate substitutes it with:
//!
//! * [`aco`] — a mixed-integer ant-colony optimizer over the same canonical
//!   form (minimize an objective subject to penalized constraints), the
//!   drop-in MIDACO replacement used by `karma-core`'s planner;
//! * [`dp`] — an exact dynamic program for *interval-separable* contiguous
//!   partition problems, used both to seed the ACO and to verify it on
//!   instances where the objective decomposes;
//! * [`exhaustive`] — brute-force enumeration of all contiguous partitions
//!   for small `n`, the ground truth in tests and the ablation bench.
//!
//! The planner's objective (pipeline occupancy, Eq. 8/9) is evaluated by a
//! black-box callback, so all three solvers share the [`problem::Problem`]
//! trait.
//!
//! **Workspace position:** a leaf crate (no `karma-*` dependencies);
//! `karma-core` plugs its blocking/recompute objective into these solvers.

pub mod aco;
pub mod dp;
pub mod exhaustive;
pub mod problem;

pub use aco::{Aco, AcoConfig};
pub use dp::optimal_partition;
pub use exhaustive::best_partition_exhaustive;
pub use problem::{Evaluation, Problem};

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimize sum of squared distance to a target vector with a simple
    /// constraint — a smoke test across the solver stack.
    struct Quad {
        target: Vec<i64>,
    }

    impl Problem for Quad {
        fn dims(&self) -> usize {
            self.target.len()
        }
        fn bounds(&self, _i: usize) -> (i64, i64) {
            (0, 10)
        }
        fn evaluate(&self, x: &[i64]) -> Evaluation {
            let obj: f64 = x
                .iter()
                .zip(&self.target)
                .map(|(&a, &b)| ((a - b) as f64).powi(2))
                .sum();
            // Constraint: sum(x) >= 10.
            let s: i64 = x.iter().sum();
            Evaluation {
                objective: obj,
                violation: (10 - s).max(0) as f64,
            }
        }
    }

    #[test]
    fn aco_solves_separable_quadratic() {
        let p = Quad {
            target: vec![3, 7, 2, 5],
        };
        let best = Aco::new(AcoConfig::fast(42)).minimize(&p);
        assert_eq!(best.x, vec![3, 7, 2, 5]);
        assert_eq!(best.eval.objective, 0.0);
        assert_eq!(best.eval.violation, 0.0);
    }
}

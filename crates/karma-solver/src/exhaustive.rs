//! Exhaustive enumeration of contiguous partitions (ground truth for tests
//! and the X2 ablation). A model of `n` layers has `2^(n-1)` contiguous
//! partitions; this is tractable for `n <= ~20`.

/// Evaluate every contiguous partition of `0..n` with the black-box
/// `score` (lower is better; `None` = infeasible) and return the best
/// boundary vector with its score.
pub fn best_partition_exhaustive(
    n: usize,
    mut score: impl FnMut(&[usize]) -> Option<f64>,
) -> Option<(Vec<usize>, f64)> {
    assert!(n >= 1, "cannot partition zero layers");
    assert!(
        n <= 24,
        "exhaustive search limited to n<=24 (2^23 candidates)"
    );
    let mut best: Option<(Vec<usize>, f64)> = None;
    let cuts = n - 1;
    let mut bounds = Vec::with_capacity(n);
    for mask in 0u64..(1u64 << cuts) {
        bounds.clear();
        bounds.push(0);
        for c in 0..cuts {
            if mask & (1 << c) != 0 {
                bounds.push(c + 1);
            }
        }
        if let Some(s) = score(&bounds) {
            let better = match &best {
                None => true,
                Some((_, bs)) => s < *bs,
            };
            if better {
                best = Some((bounds.clone(), s));
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp::optimal_partition;

    #[test]
    fn agrees_with_dp_on_separable_costs() {
        // Random-ish separable cost; exhaustive and DP must agree.
        let w = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let block_cost = |i: usize, j: usize| Some(w[i..j].iter().sum::<f64>().powi(2) + 2.0);
        let (dp_bounds, dp_cost) = optimal_partition(8, block_cost).unwrap();
        let (ex_bounds, ex_cost) = best_partition_exhaustive(8, |bounds| {
            let mut total = 0.0;
            for (bi, &start) in bounds.iter().enumerate() {
                let end = bounds.get(bi + 1).copied().unwrap_or(8);
                total += block_cost(start, end)?;
            }
            Some(total)
        })
        .unwrap();
        assert!((dp_cost - ex_cost).abs() < 1e-9);
        assert_eq!(dp_bounds, ex_bounds);
    }

    #[test]
    fn enumerates_all_partitions() {
        let mut count = 0usize;
        best_partition_exhaustive(5, |_| {
            count += 1;
            Some(1.0)
        });
        assert_eq!(count, 16); // 2^(5-1)
    }

    #[test]
    fn returns_none_when_everything_infeasible() {
        assert!(best_partition_exhaustive(4, |_| None).is_none());
    }

    #[test]
    fn single_layer_has_single_partition() {
        let (bounds, s) = best_partition_exhaustive(1, |b| Some(b.len() as f64)).unwrap();
        assert_eq!(bounds, vec![0]);
        assert_eq!(s, 1.0);
    }

    #[test]
    #[should_panic(expected = "limited")]
    fn refuses_unbounded_enumeration() {
        best_partition_exhaustive(30, |_| Some(0.0));
    }
}

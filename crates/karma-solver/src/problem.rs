//! The canonical constrained mixed-integer problem form shared by all
//! solvers — mirroring MIDACO's black-box interface: integer decision
//! variables with box bounds, one objective to minimize and an aggregate
//! constraint-violation measure.

/// Result of evaluating a candidate solution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Evaluation {
    /// Objective value (minimized).
    pub objective: f64,
    /// Total constraint violation; `0.0` means feasible. Infeasible
    /// solutions compare worse than any feasible one (oracle penalty).
    pub violation: f64,
}

impl Evaluation {
    /// Lexicographic comparison: feasibility first, then objective — the
    /// "oracle penalty" ordering MIDACO-style solvers use.
    pub fn better_than(&self, other: &Evaluation) -> bool {
        match (self.violation <= 0.0, other.violation <= 0.0) {
            (true, true) => self.objective < other.objective,
            (true, false) => true,
            (false, true) => false,
            (false, false) => self.violation < other.violation,
        }
    }
}

/// A black-box constrained integer program.
///
/// `Sync` is a supertrait because the ACO solver evaluates each
/// generation's candidate batch in parallel ([`crate::Aco::minimize`]):
/// `evaluate` must be safe to call concurrently from several threads.
/// Implementations that cache evaluations internally should use a
/// thread-safe wrapper (e.g. `Mutex<HashMap<..>>`).
pub trait Problem: Sync {
    /// Number of integer decision variables.
    fn dims(&self) -> usize;
    /// Inclusive bounds of variable `i`.
    fn bounds(&self, i: usize) -> (i64, i64);
    /// Evaluate a candidate (always called with `x.len() == dims()` and all
    /// entries within bounds).
    fn evaluate(&self, x: &[i64]) -> Evaluation;
    /// Optional warm-start candidates (e.g. a DP seed). Entries are clamped
    /// to bounds by the solver.
    fn seeds(&self) -> Vec<Vec<i64>> {
        Vec::new()
    }
}

/// A candidate solution with its evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// Decision vector.
    pub x: Vec<i64>,
    /// Its evaluation.
    pub eval: Evaluation,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feasible_always_beats_infeasible() {
        let good = Evaluation {
            objective: 1000.0,
            violation: 0.0,
        };
        let bad = Evaluation {
            objective: 0.0,
            violation: 0.1,
        };
        assert!(good.better_than(&bad));
        assert!(!bad.better_than(&good));
    }

    #[test]
    fn among_feasible_lower_objective_wins() {
        let a = Evaluation {
            objective: 1.0,
            violation: 0.0,
        };
        let b = Evaluation {
            objective: 2.0,
            violation: 0.0,
        };
        assert!(a.better_than(&b));
        assert!(!b.better_than(&a));
    }

    #[test]
    fn among_infeasible_lower_violation_wins() {
        let a = Evaluation {
            objective: 9.0,
            violation: 1.0,
        };
        let b = Evaluation {
            objective: 0.0,
            violation: 2.0,
        };
        assert!(a.better_than(&b));
    }
}

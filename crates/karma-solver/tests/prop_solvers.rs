//! Property tests: solver cross-checks on randomized instances.

use karma_solver::{
    best_partition_exhaustive, optimal_partition, Aco, AcoConfig, Evaluation, Problem,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 40, .. ProptestConfig::default() })]

    /// The DP finds the exhaustive optimum on random separable interval
    /// costs (cost of a block = quadratic in its weight sum + fixed cost).
    #[test]
    fn dp_matches_exhaustive_on_random_instances(
        weights in prop::collection::vec(0.1f64..10.0, 2..10),
        fixed in 0.1f64..5.0,
    ) {
        let n = weights.len();
        let block_cost = |i: usize, j: usize| -> Option<f64> {
            Some(weights[i..j].iter().sum::<f64>().powi(2) + fixed)
        };
        let (_, dp_cost) = optimal_partition(n, block_cost).unwrap();
        let (_, ex_cost) = best_partition_exhaustive(n, |bounds| {
            let mut total = 0.0;
            for (bi, &start) in bounds.iter().enumerate() {
                let end = bounds.get(bi + 1).copied().unwrap_or(n);
                total += block_cost(start, end)?;
            }
            Some(total)
        })
        .unwrap();
        prop_assert!((dp_cost - ex_cost).abs() < 1e-9, "dp {} vs exhaustive {}", dp_cost, ex_cost);
    }

    /// The ACO never returns anything worse than the best of its own seeds
    /// (its archive is initialized with them), and always within bounds.
    #[test]
    fn aco_result_dominates_its_seeds(
        target in prop::collection::vec(0i64..8, 3..10),
        seed in 0u64..1000,
    ) {
        #[derive(Clone)]
        struct P { target: Vec<i64> }
        impl Problem for P {
            fn dims(&self) -> usize { self.target.len() }
            fn bounds(&self, _: usize) -> (i64, i64) { (0, 8) }
            fn evaluate(&self, x: &[i64]) -> Evaluation {
                Evaluation {
                    objective: x.iter().zip(&self.target)
                        .map(|(a, b)| ((a - b) as f64).abs())
                        .sum(),
                    violation: 0.0,
                }
            }
            fn seeds(&self) -> Vec<Vec<i64>> {
                vec![vec![4; self.target.len()], vec![0; self.target.len()]]
            }
        }
        let p = P { target };
        let best_seed = p.seeds().into_iter()
            .map(|s| p.evaluate(&s).objective)
            .fold(f64::INFINITY, f64::min);
        let sol = Aco::new(AcoConfig::fast(seed)).minimize(&p);
        prop_assert!(sol.eval.objective <= best_seed + 1e-12);
        for (i, &v) in sol.x.iter().enumerate() {
            let (lo, hi) = p.bounds(i);
            prop_assert!((lo..=hi).contains(&v));
        }
    }

    /// Fixed-k DP: more blocks never hurt when block costs are quadratic
    /// in block weight (finer splits only remove the coupling).
    #[test]
    fn more_blocks_never_hurt_for_superadditive_costs(
        weights in prop::collection::vec(0.1f64..10.0, 4..10),
    ) {
        use karma_solver::dp::optimal_partition_k;
        let n = weights.len();
        let cost = |i: usize, j: usize| -> Option<f64> {
            Some(weights[i..j].iter().sum::<f64>().powi(2))
        };
        let mut prev = f64::INFINITY;
        for k in 1..=n {
            let (_, c) = optimal_partition_k(n, k, cost).unwrap();
            prop_assert!(c <= prev + 1e-9, "k={}: {} > {}", k, c, prev);
            prev = c;
        }
    }
}

//! Property tests: block-partition invariants on randomized graphs.

use karma_graph::{BlockPartition, GraphBuilder, MemoryParams, Shape};
use proptest::prelude::*;

fn chain(n: usize, ch: usize) -> karma_graph::ModelGraph {
    let mut b = GraphBuilder::new("prop", Shape::chw(ch, 8, 8));
    for _ in 0..n {
        b.conv(ch, 3, 1, 1);
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, .. ProptestConfig::default() })]

    /// Any partition conserves the graph totals: FLOPs, params and every
    /// memory component sum across blocks to the whole-model values
    /// (constraints 9.1/9.2: complete and disjoint).
    #[test]
    fn partitions_conserve_totals(
        convs in 2usize..12,
        cuts in prop::collection::btree_set(1usize..12, 0..6),
        batch in 1usize..9,
    ) {
        let g = chain(convs, 4);
        let n = g.len();
        let mut bounds: Vec<usize> = vec![0];
        bounds.extend(cuts.into_iter().filter(|&c| c < n));
        bounds.dedup();
        let p = BlockPartition::new(bounds, n).unwrap();
        let mem = MemoryParams::default();
        let costs = p.costs(&g, batch, &mem);

        let fwd: f64 = costs.iter().map(|c| c.forward_flops).sum();
        prop_assert!((fwd - g.forward_flops(batch)).abs() < 1e-6 * fwd.max(1.0));
        let params: u64 = costs.iter().map(|c| c.params).sum();
        prop_assert_eq!(params, g.total_params());
        let agg = g.memory(batch, &mem);
        let act: u64 = costs.iter().map(|c| c.memory.activations).sum();
        prop_assert_eq!(act, agg.activations);
        let w: u64 = costs.iter().map(|c| c.memory.weights).sum();
        prop_assert_eq!(w, agg.weights);
    }

    /// block_of is the inverse of the block ranges.
    #[test]
    fn block_of_inverts_ranges(
        n in 2usize..40,
        k in 1usize..10,
    ) {
        let p = BlockPartition::uniform(n, k);
        for b in p.blocks() {
            for l in b.layers.clone() {
                prop_assert_eq!(p.block_of(l), b.index);
            }
        }
    }

    /// Memory decompositions scale: activation terms linearly with batch,
    /// weight terms not at all — over arbitrary chains.
    #[test]
    fn memory_projection_law(convs in 1usize..10, scale in 2usize..6) {
        let g = chain(convs, 4);
        let mem = MemoryParams::exact();
        let m1 = g.memory(1, &mem);
        let mk = g.memory(scale, &mem);
        prop_assert_eq!(mk.activations, m1.activations * scale as u64);
        prop_assert_eq!(mk.activation_grads, m1.activation_grads * scale as u64);
        prop_assert_eq!(mk.weights, m1.weights);
        prop_assert_eq!(mk.optimizer, m1.optimizer);
    }
}

//! Per-variable memory accounting (paper Sec. III-D).
//!
//! The paper profiles each model once with PyTorch's `memory_stats()` and
//! NVIDIA tooling, breaks usage down "per variable type, i.e. inputs,
//! weights, weight gradients, activations, and activation gradients", and
//! then *projects* footprints across mini-batch sizes without re-profiling.
//! We reproduce exactly that decomposition analytically: weight-side terms
//! are batch-invariant, activation-side terms scale linearly with batch, and
//! a workspace term models cuDNN scratch / allocator slack.

use serde::{Deserialize, Serialize};

use crate::layer::LayerKind;
use crate::shape::Shape;
use crate::DTYPE_BYTES;

/// Knobs of the memory model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemoryParams {
    /// Bytes per tensor element (4 for f32 training).
    pub dtype_bytes: u64,
    /// Bytes of optimizer state per parameter (0 = plain SGD, 4 = momentum,
    /// 8 = Adam first+second moments), in addition to weight + gradient.
    pub optimizer_bytes_per_param: u64,
    /// Workspace charged as a fraction of a convolution's activation output
    /// (models cuDNN algo scratch). Other layers get no workspace.
    pub conv_workspace_frac: f64,
    /// Multiplicative allocator slack (caching-allocator fragmentation).
    pub allocator_slack: f64,
    /// Multiplier on activation-side terms obtained by per-model offline
    /// profiling — the reproduction's analogue of the paper's Sec. III-D
    /// empirical calibration. A layer-output census undercounts frameworks
    /// that also retain pre-activations, normalization statistics and
    /// gradient staging buffers (multiplier > 1), and overcounts models
    /// dominated by fused/in-place ops (multiplier < 1).
    pub activation_overhead: f64,
}

impl Default for MemoryParams {
    fn default() -> Self {
        MemoryParams {
            dtype_bytes: DTYPE_BYTES,
            optimizer_bytes_per_param: 4, // SGD + momentum, the paper's setup
            conv_workspace_frac: 0.25,
            allocator_slack: 1.05,
            activation_overhead: 1.0,
        }
    }
}

impl MemoryParams {
    /// Plain-SGD, zero-slack parameters for exact-arithmetic unit tests.
    pub fn exact() -> Self {
        MemoryParams {
            dtype_bytes: DTYPE_BYTES,
            optimizer_bytes_per_param: 0,
            conv_workspace_frac: 0.0,
            allocator_slack: 1.0,
            activation_overhead: 1.0,
        }
    }

    /// Default parameters with a profiled per-model activation multiplier
    /// (see [`MemoryParams::activation_overhead`]).
    pub fn calibrated(activation_overhead: f64) -> Self {
        MemoryParams {
            activation_overhead,
            ..MemoryParams::default()
        }
    }
}

/// Memory requirement of one layer at a given batch size, decomposed by
/// variable type exactly as the paper's offline profiling step reports it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct LayerMemory {
    /// Trainable weights (batch-invariant).
    pub weights: u64,
    /// Weight gradients (batch-invariant).
    pub weight_grads: u64,
    /// Optimizer state (batch-invariant).
    pub optimizer: u64,
    /// Stored output activations (scales with batch; needed by backward).
    pub activations: u64,
    /// Activation gradients (scales with batch).
    pub activation_grads: u64,
    /// Scratch workspace while the layer executes (scales with batch).
    pub workspace: u64,
}

impl LayerMemory {
    /// Compute the decomposition for `kind` with per-sample `input`/`output`
    /// shapes at mini-batch size `batch`.
    pub fn of(
        kind: &LayerKind,
        input: &Shape,
        output: &Shape,
        batch: usize,
        p: &MemoryParams,
    ) -> Self {
        let params = kind.params(input);
        let act_elems = output.elements() * batch as u64;
        let slack = |b: u64| (b as f64 * p.allocator_slack) as u64;
        let act_slack = |b: u64| (b as f64 * p.allocator_slack * p.activation_overhead) as u64;
        let workspace = match kind {
            LayerKind::Conv2d { .. } | LayerKind::ConvTranspose2d { .. } => {
                (act_elems as f64 * p.conv_workspace_frac) as u64 * p.dtype_bytes
            }
            // Attention keeps the (len × len) score matrix per head.
            LayerKind::SelfAttention { heads, .. } | LayerKind::TransformerBlock { heads, .. } => {
                let len = input.seq_dims().map(|(l, _)| l as u64).unwrap_or(0);
                len * len * *heads as u64 * batch as u64 * p.dtype_bytes
            }
            _ => 0,
        };
        LayerMemory {
            weights: slack(params * p.dtype_bytes),
            weight_grads: slack(params * p.dtype_bytes),
            optimizer: slack(params * p.optimizer_bytes_per_param),
            activations: act_slack(act_elems * p.dtype_bytes),
            activation_grads: act_slack(act_elems * p.dtype_bytes),
            workspace: act_slack(workspace),
        }
    }

    /// Everything the layer ever touches (peak, both phases live).
    #[inline]
    pub fn total(&self) -> u64 {
        self.weights
            + self.weight_grads
            + self.optimizer
            + self.activations
            + self.activation_grads
            + self.workspace
    }

    /// Bytes that must be resident to run the **forward** pass: weights plus
    /// the output activation being produced (gradients don't exist yet).
    #[inline]
    pub fn forward_resident(&self) -> u64 {
        self.weights + self.activations + self.workspace
    }

    /// Bytes that must be resident to run the **backward** pass: weights,
    /// saved activations, activation gradients and weight gradients.
    #[inline]
    pub fn backward_resident(&self) -> u64 {
        self.weights + self.weight_grads + self.activations + self.activation_grads + self.workspace
    }

    /// Bytes moved when this layer's state is swapped between near and far
    /// memory after the forward pass: the saved activations (weights ride
    /// along per block; the planner accounts for them at block granularity).
    #[inline]
    pub fn swap_bytes_forward(&self) -> u64 {
        self.activations
    }

    /// Batch-invariant bytes (model state replicated per device in data
    /// parallelism; the term ZeRO partitions away).
    #[inline]
    pub fn model_state(&self) -> u64 {
        self.weights + self.weight_grads + self.optimizer
    }

    /// Element-wise sum of two decompositions (block aggregation).
    pub fn add(&self, o: &LayerMemory) -> LayerMemory {
        LayerMemory {
            weights: self.weights + o.weights,
            weight_grads: self.weight_grads + o.weight_grads,
            optimizer: self.optimizer + o.optimizer,
            activations: self.activations + o.activations,
            activation_grads: self.activation_grads + o.activation_grads,
            workspace: self.workspace + o.workspace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conv() -> (LayerKind, Shape, Shape) {
        let k = LayerKind::Conv2d {
            in_ch: 64,
            out_ch: 64,
            kernel: 3,
            stride: 1,
            padding: 1,
        };
        let s = Shape::chw(64, 56, 56);
        (k.clone(), s.clone(), k.out_shape(&s, None))
    }

    #[test]
    fn activations_scale_with_batch_weights_do_not() {
        let (k, i, o) = conv();
        let p = MemoryParams::exact();
        let m1 = LayerMemory::of(&k, &i, &o, 1, &p);
        let m8 = LayerMemory::of(&k, &i, &o, 8, &p);
        assert_eq!(m8.activations, 8 * m1.activations);
        assert_eq!(m8.weights, m1.weights);
        assert_eq!(m8.weight_grads, m1.weight_grads);
    }

    #[test]
    fn exact_decomposition_for_fc() {
        let k = LayerKind::FullyConnected {
            in_features: 10,
            out_features: 4,
        };
        let i = Shape::vec(10);
        let o = Shape::vec(4);
        let m = LayerMemory::of(&k, &i, &o, 2, &MemoryParams::exact());
        assert_eq!(m.weights, (10 * 4 + 4) * 4);
        assert_eq!(m.weight_grads, m.weights);
        assert_eq!(m.optimizer, 0);
        assert_eq!(m.activations, 4 * 2 * 4);
        assert_eq!(m.activation_grads, m.activations);
        assert_eq!(m.workspace, 0);
        assert_eq!(
            m.total(),
            m.weights + m.weight_grads + m.activations + m.activation_grads
        );
    }

    #[test]
    fn optimizer_state_counted_per_param() {
        let k = LayerKind::FullyConnected {
            in_features: 10,
            out_features: 4,
        };
        let i = Shape::vec(10);
        let o = Shape::vec(4);
        let mut p = MemoryParams::exact();
        p.optimizer_bytes_per_param = 8; // Adam
        let m = LayerMemory::of(&k, &i, &o, 1, &p);
        assert_eq!(m.optimizer, (10 * 4 + 4) * 8);
    }

    #[test]
    fn conv_gets_workspace() {
        let (k, i, o) = conv();
        let mut p = MemoryParams::exact();
        p.conv_workspace_frac = 0.5;
        let m = LayerMemory::of(&k, &i, &o, 1, &p);
        assert_eq!(m.workspace, (o.elements() as f64 * 0.5) as u64 * 4);
    }

    #[test]
    fn attention_workspace_is_quadratic_in_sequence() {
        let k = LayerKind::SelfAttention {
            heads: 2,
            d_model: 8,
        };
        let i = Shape::seq(16, 8);
        let o = k.out_shape(&i, None);
        let m = LayerMemory::of(&k, &i, &o, 3, &MemoryParams::exact());
        assert_eq!(m.workspace, 16 * 16 * 2 * 3 * 4);
    }

    #[test]
    fn resident_sets_are_ordered() {
        let (k, i, o) = conv();
        let m = LayerMemory::of(&k, &i, &o, 4, &MemoryParams::default());
        assert!(m.forward_resident() <= m.backward_resident());
        assert!(m.backward_resident() <= m.total());
    }

    #[test]
    fn add_is_componentwise() {
        let (k, i, o) = conv();
        let p = MemoryParams::exact();
        let m = LayerMemory::of(&k, &i, &o, 2, &p);
        let s = m.add(&m);
        assert_eq!(s.total(), 2 * m.total());
        assert_eq!(s.activations, 2 * m.activations);
    }

    #[test]
    fn activation_overhead_scales_only_activation_terms() {
        let (k, i, o) = conv();
        let exact = LayerMemory::of(&k, &i, &o, 2, &MemoryParams::exact());
        let mut p = MemoryParams::exact();
        p.activation_overhead = 3.0;
        let cal = LayerMemory::of(&k, &i, &o, 2, &p);
        assert_eq!(cal.activations, 3 * exact.activations);
        assert_eq!(cal.activation_grads, 3 * exact.activation_grads);
        assert_eq!(cal.weights, exact.weights);
        assert_eq!(cal.optimizer, exact.optimizer);
    }

    #[test]
    fn allocator_slack_inflates_everything() {
        let (k, i, o) = conv();
        let exact = LayerMemory::of(&k, &i, &o, 2, &MemoryParams::exact());
        let mut p = MemoryParams::exact();
        p.allocator_slack = 2.0;
        let slack = LayerMemory::of(&k, &i, &o, 2, &p);
        assert_eq!(slack.activations, 2 * exact.activations);
        assert_eq!(slack.weights, 2 * exact.weights);
    }
}

//! Model intermediate representation for the KARMA reproduction.
//!
//! KARMA (Wahib et al., SC '20) plans out-of-core training from three pieces
//! of per-layer metadata (paper Fig. 1, steps 1–2):
//!
//! 1. a **dependency graph** of the model, including non-linear edges
//!    (residual connections, U-Net skips) — [`graph::ModelGraph`];
//! 2. an analytic **compute cost** per layer (Sec. III-C: FLOP formulas for
//!    convolution, ReLU, pooling, batch-norm, LSTM, self-attention, fully
//!    connected, softmax, …) — [`layer::LayerKind::forward_flops`];
//! 3. a **memory model** broken down per variable type (inputs, weights,
//!    weight gradients, activations, activation gradients; Sec. III-D), which
//!    lets the planner project footprints across mini-batch sizes without
//!    re-profiling — [`memory::LayerMemory`].
//!
//! Layers are grouped into contiguous **blocks** (paper footnote 1: "a set of
//! consecutive layers that are bundled together when they are computed,
//! swapped, and their weights are being updated") — [`block::Block`] and
//! [`block::BlockPartition`].
//!
//! Shapes stored in the graph are **per-sample** (no batch dimension); every
//! cost query takes the mini-batch size as a parameter. This mirrors the
//! paper's approach of profiling once and projecting across batch sizes.

pub mod block;
pub mod builder;
pub mod graph;
pub mod layer;
pub mod memory;
pub mod shape;

pub use block::{Block, BlockCost, BlockPartition};
pub use builder::GraphBuilder;
pub use graph::{Layer, LayerId, ModelGraph};
pub use layer::LayerKind;
pub use memory::{LayerMemory, MemoryParams};
pub use shape::Shape;

/// FLOPs charged per multiply-accumulate. The paper counts "multiply and add"
/// pairs; we expand each MAC to 2 floating-point operations so that our
/// figures line up with vendor peak-FLOP specifications.
pub const FLOPS_PER_MAC: f64 = 2.0;

/// Bytes per element for the default (f32) training precision.
pub const DTYPE_BYTES: u64 = 4;

//! Fluent construction of [`ModelGraph`]s.

use crate::graph::{Layer, LayerId, ModelGraph};
use crate::layer::LayerKind;
use crate::shape::Shape;

/// Builds a [`ModelGraph`] layer by layer. Chain methods extend from the
/// *cursor* (the most recently added layer); explicit-id methods (`add`,
/// `concat`, `append_to`) express residual and skip topologies.
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    name: String,
    layers: Vec<Layer>,
    cursor: LayerId,
}

impl GraphBuilder {
    /// Start a model named `name` whose input samples have shape `input`.
    pub fn new(name: impl Into<String>, input: Shape) -> Self {
        let input_layer = Layer {
            id: 0,
            name: format!("Input {input}"),
            kind: LayerKind::Input,
            inputs: Vec::new(),
            in_shape: input.clone(),
            out_shape: input,
        };
        GraphBuilder {
            name: name.into(),
            layers: vec![input_layer],
            cursor: 0,
        }
    }

    /// The layer the next chained call will consume.
    #[inline]
    pub fn cursor(&self) -> LayerId {
        self.cursor
    }

    /// Move the cursor to an existing layer (to branch from it).
    pub fn set_cursor(&mut self, id: LayerId) -> &mut Self {
        assert!(id < self.layers.len(), "cursor {id} out of range");
        self.cursor = id;
        self
    }

    /// Output shape of layer `id`.
    pub fn shape_of(&self, id: LayerId) -> &Shape {
        &self.layers[id].out_shape
    }

    /// Append `kind` consuming `from`; returns the new layer's id.
    pub fn append_to(
        &mut self,
        from: LayerId,
        kind: LayerKind,
        name: impl Into<String>,
    ) -> LayerId {
        let in_shape = self.layers[from].out_shape.clone();
        let out_shape = kind.out_shape(&in_shape, None);
        let id = self.layers.len();
        self.layers.push(Layer {
            id,
            name: name.into(),
            kind,
            inputs: vec![from],
            in_shape,
            out_shape,
        });
        self.cursor = id;
        id
    }

    /// Append `kind` consuming the cursor.
    pub fn push(&mut self, kind: LayerKind, name: impl Into<String>) -> LayerId {
        self.append_to(self.cursor, kind, name)
    }

    /// Convolution from the cursor.
    pub fn conv(&mut self, out_ch: usize, kernel: usize, stride: usize, padding: usize) -> LayerId {
        let in_ch = self.layers[self.cursor]
            .out_shape
            .channels()
            .expect("conv needs CHW input");
        let kind = LayerKind::Conv2d {
            in_ch,
            out_ch,
            kernel,
            stride,
            padding,
        };
        let name = format!("{kernel}x{kernel} Conv, {out_ch}");
        self.push(kind, name)
    }

    /// Conv + BatchNorm + ReLU triple (the ubiquitous CNN unit).
    pub fn conv_bn_relu(
        &mut self,
        out_ch: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
    ) -> LayerId {
        self.conv(out_ch, kernel, stride, padding);
        self.batch_norm();
        self.relu()
    }

    /// ReLU from the cursor.
    pub fn relu(&mut self) -> LayerId {
        self.push(LayerKind::ReLU, "ReLU")
    }

    /// BatchNorm from the cursor.
    pub fn batch_norm(&mut self) -> LayerId {
        self.push(LayerKind::BatchNorm2d, "BatchNorm")
    }

    /// Max-pool from the cursor.
    pub fn max_pool(&mut self, kernel: usize, stride: usize, padding: usize) -> LayerId {
        self.push(
            LayerKind::MaxPool2d {
                kernel,
                stride,
                padding,
            },
            format!("{kernel}x{kernel} Max Pool"),
        )
    }

    /// Global average pool from the cursor.
    pub fn global_avg_pool(&mut self) -> LayerId {
        self.push(LayerKind::GlobalAvgPool, "Average Pooling")
    }

    /// Flatten from the cursor.
    pub fn flatten(&mut self) -> LayerId {
        self.push(LayerKind::Flatten, "Flatten")
    }

    /// Fully connected layer from the cursor.
    pub fn fc(&mut self, out_features: usize) -> LayerId {
        let in_features = self.layers[self.cursor].out_shape.elements() as usize;
        self.push(
            LayerKind::FullyConnected {
                in_features,
                out_features,
            },
            format!("FC, {out_features}"),
        )
    }

    /// Softmax from the cursor.
    pub fn softmax(&mut self) -> LayerId {
        self.push(LayerKind::Softmax, "Softmax")
    }

    /// Dropout from the cursor.
    pub fn dropout(&mut self) -> LayerId {
        self.push(LayerKind::Dropout, "Dropout")
    }

    /// Residual join of two branches.
    pub fn add(&mut self, a: LayerId, b: LayerId) -> LayerId {
        let sa = self.layers[a].out_shape.clone();
        let sb = self.layers[b].out_shape.clone();
        let out_shape = LayerKind::Add.out_shape(&sa, Some(&sb));
        let id = self.layers.len();
        self.layers.push(Layer {
            id,
            name: "Add".to_owned(),
            kind: LayerKind::Add,
            inputs: vec![a, b],
            in_shape: sa,
            out_shape,
        });
        self.cursor = id;
        id
    }

    /// Channel concatenation of two branches (U-Net skip).
    pub fn concat(&mut self, a: LayerId, b: LayerId) -> LayerId {
        let sa = self.layers[a].out_shape.clone();
        let sb = self.layers[b].out_shape.clone();
        let out_shape = LayerKind::Concat.out_shape(&sa, Some(&sb));
        let id = self.layers.len();
        self.layers.push(Layer {
            id,
            name: "Concat".to_owned(),
            kind: LayerKind::Concat,
            inputs: vec![a, b],
            in_shape: sa,
            out_shape,
        });
        self.cursor = id;
        id
    }

    /// Transposed convolution (up-sampling) from the cursor.
    pub fn conv_transpose(&mut self, out_ch: usize, kernel: usize, stride: usize) -> LayerId {
        let in_ch = self.layers[self.cursor]
            .out_shape
            .channels()
            .expect("deconv needs CHW input");
        self.push(
            LayerKind::ConvTranspose2d {
                in_ch,
                out_ch,
                kernel,
                stride,
            },
            format!("{kernel}x{kernel} Deconv, {out_ch}"),
        )
    }

    /// Transformer block from the cursor.
    pub fn transformer_block(&mut self, heads: usize, d_model: usize) -> LayerId {
        self.push(
            LayerKind::TransformerBlock { heads, d_model },
            format!("Transformer h{heads} d{d_model}"),
        )
    }

    /// Finish and validate.
    pub fn build(self) -> ModelGraph {
        let g = ModelGraph {
            name: self.name,
            layers: self.layers,
        };
        if let Err(e) = g.validate() {
            panic!("GraphBuilder produced an invalid graph: {e}");
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_tracks_shapes_through_a_cnn() {
        let mut b = GraphBuilder::new("t", Shape::chw(3, 224, 224));
        b.conv(64, 7, 2, 3);
        assert_eq!(*b.shape_of(b.cursor()), Shape::chw(64, 112, 112));
        b.max_pool(3, 2, 1);
        assert_eq!(*b.shape_of(b.cursor()), Shape::chw(64, 56, 56));
        b.global_avg_pool();
        b.flatten();
        let fc = b.fc(1000);
        assert_eq!(*b.shape_of(fc), Shape::vec(1000));
        b.build().validate().unwrap();
    }

    #[test]
    fn branching_with_set_cursor() {
        let mut b = GraphBuilder::new("branch", Shape::chw(8, 4, 4));
        let stem = b.cursor();
        let left = b.conv(8, 3, 1, 1);
        b.set_cursor(stem);
        let right = b.conv(8, 1, 1, 0);
        let joined = b.add(left, right);
        let g = b.build();
        assert_eq!(g.layers[joined].inputs, vec![left, right]);
    }

    #[test]
    fn conv_bn_relu_appends_three_layers() {
        let mut b = GraphBuilder::new("u", Shape::chw(3, 8, 8));
        let before = 1;
        b.conv_bn_relu(16, 3, 1, 1);
        let g = b.build();
        assert_eq!(g.len(), before + 3);
        assert_eq!(g.layers[1].kind.mnemonic(), "conv");
        assert_eq!(g.layers[2].kind.mnemonic(), "bn");
        assert_eq!(g.layers[3].kind.mnemonic(), "relu");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_cursor_bounds_checked() {
        let mut b = GraphBuilder::new("x", Shape::vec(4));
        b.set_cursor(10);
    }
}

//! The model dependency graph (paper Fig. 1 step 1).

use serde::{Deserialize, Serialize};

use crate::layer::LayerKind;
use crate::memory::{LayerMemory, MemoryParams};
use crate::shape::Shape;

/// Index of a layer within its [`ModelGraph`] (topological order).
pub type LayerId = usize;

/// One layer instance: kind + resolved per-sample shapes + producers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Layer {
    /// Position in topological order.
    pub id: LayerId,
    /// Display name (e.g. `"7x7 Conv, 64"` as in paper Fig. 1).
    pub name: String,
    /// Layer kind and hyper-parameters.
    pub kind: LayerKind,
    /// Producer layers; `inputs\[0\]` is the primary input. All producers have
    /// smaller ids (topological invariant, `C_ij` of constraint 9.3).
    pub inputs: Vec<LayerId>,
    /// Per-sample input shape (of the primary input).
    pub in_shape: Shape,
    /// Per-sample output shape.
    pub out_shape: Shape,
}

impl Layer {
    /// Forward FLOPs for a mini-batch of `batch` samples.
    #[inline]
    pub fn forward_flops(&self, batch: usize) -> f64 {
        self.kind.forward_flops(&self.in_shape, &self.out_shape) * batch as f64
    }

    /// Backward FLOPs for a mini-batch of `batch` samples.
    #[inline]
    pub fn backward_flops(&self, batch: usize) -> f64 {
        self.kind.backward_flops(&self.in_shape, &self.out_shape) * batch as f64
    }

    /// Trainable parameter count.
    #[inline]
    pub fn params(&self) -> u64 {
        self.kind.params(&self.in_shape)
    }

    /// Memory decomposition at `batch`.
    #[inline]
    pub fn memory(&self, batch: usize, p: &MemoryParams) -> LayerMemory {
        LayerMemory::of(&self.kind, &self.in_shape, &self.out_shape, batch, p)
    }
}

/// A DNN expressed as layers in topological order with explicit dependency
/// edges. Linear chains, residual networks (ResNet/WRN), transformer stacks
/// and encoder–decoder skips (U-Net) are all representable — the model
/// families the paper supports (Sec. III-B).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelGraph {
    /// Model name (e.g. `"ResNet-50"`).
    pub name: String,
    /// Layers in topological order.
    pub layers: Vec<Layer>,
}

impl ModelGraph {
    /// Number of layers.
    #[inline]
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// True if the graph has no layers.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Total trainable parameters.
    pub fn total_params(&self) -> u64 {
        self.layers.iter().map(Layer::params).sum()
    }

    /// Total forward FLOPs at `batch`.
    pub fn forward_flops(&self, batch: usize) -> f64 {
        self.layers.iter().map(|l| l.forward_flops(batch)).sum()
    }

    /// Total backward FLOPs at `batch`.
    pub fn backward_flops(&self, batch: usize) -> f64 {
        self.layers.iter().map(|l| l.backward_flops(batch)).sum()
    }

    /// Aggregate memory decomposition at `batch`.
    pub fn memory(&self, batch: usize, p: &MemoryParams) -> LayerMemory {
        self.layers
            .iter()
            .map(|l| l.memory(batch, p))
            .fold(LayerMemory::default(), |acc, m| acc.add(&m))
    }

    /// Peak training footprint at `batch`: all model state plus all saved
    /// activations and the largest transient (grad + workspace) — the value
    /// compared against device capacity to decide whether training is
    /// in-core (first x-axis point of every Fig. 5 plot) or out-of-core.
    pub fn peak_footprint(&self, batch: usize, p: &MemoryParams) -> u64 {
        let agg = self.memory(batch, p);
        let max_transient = self
            .layers
            .iter()
            .map(|l| {
                let m = l.memory(batch, p);
                m.activation_grads + m.workspace
            })
            .max()
            .unwrap_or(0);
        agg.model_state() + agg.activations + agg.workspace.min(max_transient) + max_transient
    }

    /// Consumers of each layer (inverse adjacency).
    pub fn consumers(&self) -> Vec<Vec<LayerId>> {
        let mut out = vec![Vec::new(); self.layers.len()];
        for l in &self.layers {
            for &p in &l.inputs {
                out[p].push(l.id);
            }
        }
        out
    }

    /// Edges `(src, dst)` that jump over at least one layer (`dst > src + 1`)
    /// — the non-linear connections (residual adds, U-Net skips) the planner
    /// must respect (paper Sec. III-F.4).
    pub fn skip_edges(&self) -> Vec<(LayerId, LayerId)> {
        let mut out = Vec::new();
        for l in &self.layers {
            for &p in &l.inputs {
                if l.id > p + 1 {
                    out.push((p, l.id));
                }
            }
        }
        out
    }

    /// True when the graph is a pure chain (every layer consumes only its
    /// predecessor).
    pub fn is_linear(&self) -> bool {
        self.skip_edges().is_empty()
    }

    /// Validate structural invariants:
    /// topological producer order, primary-input shape agreement, and that
    /// layer 0 is the (only) input.
    pub fn validate(&self) -> Result<(), String> {
        if self.layers.is_empty() {
            return Err("empty graph".into());
        }
        if !matches!(self.layers[0].kind, LayerKind::Input) {
            return Err("layer 0 must be Input".into());
        }
        for (i, l) in self.layers.iter().enumerate() {
            if l.id != i {
                return Err(format!("layer {i} has id {}", l.id));
            }
            if i > 0 && l.inputs.is_empty() {
                return Err(format!("layer {i} ({}) has no producers", l.name));
            }
            if matches!(l.kind, LayerKind::Input) && i != 0 {
                return Err(format!("secondary Input at {i}"));
            }
            for &p in &l.inputs {
                if p >= i {
                    return Err(format!(
                        "layer {i} ({}) depends on later/self layer {p}",
                        l.name
                    ));
                }
            }
            if let Some(&p) = l.inputs.first() {
                if self.layers[p].out_shape != l.in_shape {
                    return Err(format!(
                        "shape mismatch into layer {i} ({}): producer {} yields {}, layer expects {}",
                        l.name, p, self.layers[p].out_shape, l.in_shape
                    ));
                }
            }
        }
        Ok(())
    }

    /// One-line summary used by examples and the bench harness.
    pub fn summary(&self, batch: usize, p: &MemoryParams) -> String {
        format!(
            "{}: {} layers, {:.1}M params, fwd {:.1} GFLOPs @ batch {}, peak {:.2} GiB",
            self.name,
            self.len(),
            self.total_params() as f64 / 1e6,
            self.forward_flops(batch) / 1e9,
            batch,
            self.peak_footprint(batch, p) as f64 / (1u64 << 30) as f64,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn tiny_chain() -> ModelGraph {
        let mut b = GraphBuilder::new("tiny", Shape::chw(3, 8, 8));
        b.conv(16, 3, 1, 1);
        b.relu();
        b.flatten();
        b.fc(10);
        b.softmax();
        b.build()
    }

    #[test]
    fn chain_validates_and_is_linear() {
        let g = tiny_chain();
        g.validate().unwrap();
        assert!(g.is_linear());
        assert_eq!(g.len(), 6); // input + 5
    }

    #[test]
    fn totals_are_sums() {
        let g = tiny_chain();
        let per: f64 = g.layers.iter().map(|l| l.forward_flops(4)).sum();
        assert_eq!(g.forward_flops(4), per);
        let params: u64 = g.layers.iter().map(Layer::params).sum();
        assert_eq!(g.total_params(), params);
    }

    #[test]
    fn consumers_inverts_inputs() {
        let g = tiny_chain();
        let cons = g.consumers();
        for l in &g.layers {
            for &p in &l.inputs {
                assert!(cons[p].contains(&l.id));
            }
        }
        // Output layer has no consumers.
        assert!(cons[g.len() - 1].is_empty());
    }

    #[test]
    fn residual_graph_has_skip_edges() {
        let mut b = GraphBuilder::new("res", Shape::chw(8, 4, 4));
        let trunk = b.conv(8, 3, 1, 1);
        b.relu();
        let branch_end = b.conv(8, 3, 1, 1);
        let add = b.add(trunk, branch_end);
        let g = b.build();
        g.validate().unwrap();
        assert!(!g.is_linear());
        let skips = g.skip_edges();
        assert!(skips.contains(&(trunk, add)));
    }

    #[test]
    fn peak_footprint_grows_with_batch() {
        let g = tiny_chain();
        let p = MemoryParams::default();
        assert!(g.peak_footprint(8, &p) > g.peak_footprint(1, &p));
    }

    #[test]
    fn validate_rejects_forward_dependency() {
        let mut g = tiny_chain();
        g.layers[1].inputs = vec![3];
        assert!(g.validate().is_err());
    }

    #[test]
    fn validate_rejects_shape_mismatch() {
        let mut g = tiny_chain();
        g.layers[1].in_shape = Shape::chw(4, 8, 8);
        let err = g.validate().unwrap_err();
        assert!(err.contains("shape mismatch"), "{err}");
    }
}

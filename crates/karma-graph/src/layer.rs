//! Layer kinds with the paper's analytic compute-cost formulas (Sec. III-C).
//!
//! The paper's planner uses the aggregate number of arithmetic operations per
//! layer as the compute proxy, citing evidence that framework-level fusion
//! has minimal effect on aggregate operation counts. We implement each of the
//! formulas in Sec. III-C 1)–9); composite layers used by the model zoo
//! (e.g. [`LayerKind::TransformerBlock`]) document how they expand into the
//! primitive formulas.

use serde::{Deserialize, Serialize};

use crate::shape::{conv_out, Shape};
use crate::FLOPS_PER_MAC;

/// The kind of a layer, with the hyper-parameters needed by the cost model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LayerKind {
    /// Network input (a data source; zero compute, activation = the sample).
    Input,
    /// 2-D convolution `in_ch -> out_ch` with square `kernel`, `stride`,
    /// `padding` (paper III-C.1).
    Conv2d {
        in_ch: usize,
        out_ch: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
    },
    /// Rectified linear unit (paper III-C.2): `|Y|` comparisons.
    ReLU,
    /// Max pooling (paper III-C.3 with `c = 1`).
    MaxPool2d {
        kernel: usize,
        stride: usize,
        padding: usize,
    },
    /// Average pooling (paper III-C.3 with `c = 2`: add + divide).
    AvgPool2d {
        kernel: usize,
        stride: usize,
        padding: usize,
    },
    /// Global average pooling to `C × 1 × 1`.
    GlobalAvgPool,
    /// Batch normalization (paper III-C.4): `3|B| + 4|X| + 2|Y|`.
    BatchNorm2d,
    /// Layer normalization over the feature dimension (transformers); same
    /// cost form as batch-norm without the cross-batch statistics.
    LayerNorm,
    /// Fully connected layer (paper III-C.7): `|X| × |Y|` MACs.
    FullyConnected {
        in_features: usize,
        out_features: usize,
    },
    /// Softmax (paper III-C.8): `2|X|`.
    Softmax,
    /// Dropout: one mask multiply per element (paper III-C.9 "other").
    Dropout,
    /// Element-wise addition of two inputs (residual join).
    Add,
    /// Channel concatenation of two inputs (U-Net skip join).
    Concat,
    /// Flatten CHW activation to a vector (paper III-C.9 reshaping; free).
    Flatten,
    /// LSTM step over a sequence (paper III-C.5): gate GEMMs plus the
    /// `20·|Y|` element-wise combination the paper counts. `hidden` is the
    /// cell width; input width comes from the incoming shape.
    Lstm { hidden: usize },
    /// Multi-head self-attention over a sequence (paper III-C.6). The paper's
    /// proxy for one head is `4·d_k³ + d_k² + 2·d_k` with
    /// `Attention(Q,K,V) = softmax(QKᵀ/√d_k)·V`; we evaluate it per head and
    /// add the input/output projections (which the paper folds into its
    /// "adjusted per variant" rule).
    SelfAttention { heads: usize, d_model: usize },
    /// A full pre-norm transformer block: self-attention + 2-layer MLP with
    /// hidden width `4·d_model`, as used by Megatron-LM and Turing-NLG. This
    /// composite exists so billion-parameter models stay at the granularity
    /// the paper schedules (one block of layers per transformer layer).
    TransformerBlock { heads: usize, d_model: usize },
    /// Token + position embedding lookup (memory-bound; ~zero FLOPs).
    Embedding { vocab: usize, d_model: usize },
    /// 2-D transposed convolution (U-Net expansive path up-sampling).
    ConvTranspose2d {
        in_ch: usize,
        out_ch: usize,
        kernel: usize,
        stride: usize,
    },
}

impl LayerKind {
    /// Infer the per-sample output shape from the (first) input shape.
    /// `second` carries the second operand's shape for [`LayerKind::Add`] /
    /// [`LayerKind::Concat`].
    pub fn out_shape(&self, input: &Shape, second: Option<&Shape>) -> Shape {
        match self {
            LayerKind::Input => input.clone(),
            LayerKind::Conv2d {
                out_ch,
                kernel,
                stride,
                padding,
                in_ch,
            } => {
                let (h, w) = input.hw().expect("Conv2d needs a CHW input");
                assert_eq!(
                    input.channels(),
                    Some(*in_ch),
                    "Conv2d in_ch mismatch: declared {in_ch}, got {input}"
                );
                Shape::chw(
                    *out_ch,
                    conv_out(h, *kernel, *stride, *padding),
                    conv_out(w, *kernel, *stride, *padding),
                )
            }
            LayerKind::ReLU
            | LayerKind::BatchNorm2d
            | LayerKind::LayerNorm
            | LayerKind::Softmax
            | LayerKind::Dropout => input.clone(),
            LayerKind::MaxPool2d {
                kernel,
                stride,
                padding,
            }
            | LayerKind::AvgPool2d {
                kernel,
                stride,
                padding,
            } => {
                let c = input.channels().expect("pooling needs a CHW input");
                let (h, w) = input.hw().unwrap();
                Shape::chw(
                    c,
                    conv_out(h, *kernel, *stride, *padding),
                    conv_out(w, *kernel, *stride, *padding),
                )
            }
            LayerKind::GlobalAvgPool => {
                let c = input.channels().expect("global pool needs a CHW input");
                Shape::chw(c, 1, 1)
            }
            LayerKind::FullyConnected { out_features, .. } => Shape::vec(*out_features),
            LayerKind::Add => {
                let rhs = second.expect("Add needs two inputs");
                assert_eq!(input, rhs, "Add operands must have identical shapes");
                input.clone()
            }
            LayerKind::Concat => {
                let rhs = second.expect("Concat needs two inputs");
                let (c1, (h1, w1)) = (input.channels().unwrap(), input.hw().unwrap());
                let (c2, (h2, w2)) = (rhs.channels().unwrap(), rhs.hw().unwrap());
                assert_eq!((h1, w1), (h2, w2), "Concat spatial dims must match");
                Shape::chw(c1 + c2, h1, w1)
            }
            LayerKind::Flatten => Shape::vec(input.elements() as usize),
            LayerKind::Lstm { hidden } => {
                let (len, _d) = input.seq_dims().expect("LSTM needs a sequence input");
                Shape::seq(len, *hidden)
            }
            LayerKind::SelfAttention { d_model, .. }
            | LayerKind::TransformerBlock { d_model, .. } => {
                let (len, d) = input.seq_dims().expect("attention needs a sequence input");
                assert_eq!(d, *d_model, "attention d_model mismatch");
                Shape::seq(len, *d_model)
            }
            LayerKind::Embedding { d_model, .. } => {
                let len = input.0[0];
                Shape::seq(len, *d_model)
            }
            LayerKind::ConvTranspose2d {
                in_ch,
                out_ch,
                kernel,
                stride,
            } => {
                let (h, w) = input.hw().expect("ConvTranspose2d needs a CHW input");
                assert_eq!(
                    input.channels(),
                    Some(*in_ch),
                    "ConvTranspose2d in_ch mismatch"
                );
                // Standard transposed-conv size: (in - 1) * stride + kernel.
                Shape::chw(
                    *out_ch,
                    (h - 1) * stride + *kernel,
                    (w - 1) * stride + *kernel,
                )
            }
        }
    }

    /// Trainable parameter count (weights + biases where conventional).
    pub fn params(&self, input: &Shape) -> u64 {
        match self {
            LayerKind::Conv2d {
                in_ch,
                out_ch,
                kernel,
                ..
            } => (*in_ch as u64) * (*out_ch as u64) * (*kernel as u64).pow(2) + *out_ch as u64,
            LayerKind::ConvTranspose2d {
                in_ch,
                out_ch,
                kernel,
                ..
            } => (*in_ch as u64) * (*out_ch as u64) * (*kernel as u64).pow(2) + *out_ch as u64,
            LayerKind::BatchNorm2d => 2 * input.channels().expect("BN needs CHW") as u64,
            LayerKind::LayerNorm => {
                let d = input
                    .seq_dims()
                    .map(|(_, d)| d)
                    .unwrap_or_else(|| input.elements() as usize);
                2 * d as u64
            }
            LayerKind::FullyConnected {
                in_features,
                out_features,
            } => (*in_features as u64) * (*out_features as u64) + *out_features as u64,
            LayerKind::Lstm { hidden } => {
                let d = input.seq_dims().expect("LSTM needs sequence").1 as u64;
                let h = *hidden as u64;
                // 4 gates, each with input and recurrent weights plus bias.
                4 * (d * h + h * h + h)
            }
            LayerKind::SelfAttention { d_model, .. } => {
                let d = *d_model as u64;
                // Q, K, V and output projections.
                4 * (d * d + d)
            }
            LayerKind::TransformerBlock { d_model, .. } => {
                let d = *d_model as u64;
                // Attention projections + MLP (d->4d->d) + 2 layer-norms.
                4 * (d * d + d) + (d * 4 * d + 4 * d) + (4 * d * d + d) + 2 * (2 * d)
            }
            LayerKind::Embedding { vocab, d_model } => (*vocab as u64) * (*d_model as u64),
            _ => 0,
        }
    }

    /// Forward-pass FLOPs for **one sample**, per the paper's Sec. III-C
    /// formulas. Batch scaling is the caller's responsibility (multiply by
    /// the mini-batch size), except for the `3|B|` batch-statistics term of
    /// batch-norm, which is negligible and charged per sample here.
    pub fn forward_flops(&self, input: &Shape, output: &Shape) -> f64 {
        let x = input.elements() as f64;
        let y = output.elements() as f64;
        match self {
            LayerKind::Input | LayerKind::Flatten => 0.0,
            // |Y| * K * K * C_i multiply-adds (III-C.1).
            LayerKind::Conv2d { in_ch, kernel, .. } => {
                y * (*kernel as f64).powi(2) * *in_ch as f64 * FLOPS_PER_MAC
            }
            LayerKind::ConvTranspose2d { in_ch, kernel, .. } => {
                // Same MAC count as the equivalent forward conv over the
                // *input* elements scattering into the output.
                x * (*kernel as f64).powi(2) * *in_ch as f64 * FLOPS_PER_MAC
            }
            // |Y| comparisons (III-C.2).
            LayerKind::ReLU => y,
            // |Y| * K * K (III-C.3), c = 1 for max (compare).
            LayerKind::MaxPool2d { kernel, .. } => y * (*kernel as f64).powi(2),
            // c = 2 for average (add then scale).
            LayerKind::AvgPool2d { kernel, .. } => y * (*kernel as f64).powi(2) * 2.0,
            LayerKind::GlobalAvgPool => x + y,
            // 3|B| + 4|X| + 2|Y| (III-C.4); |B| ~ 1 per sample slot.
            LayerKind::BatchNorm2d => 3.0 + 4.0 * x + 2.0 * y,
            LayerKind::LayerNorm => 4.0 * x + 2.0 * y,
            // |WT| = |X| × |Y| MACs (III-C.7).
            LayerKind::FullyConnected {
                in_features,
                out_features,
            } => *in_features as f64 * *out_features as f64 * FLOPS_PER_MAC,
            // 2|X| (III-C.8).
            LayerKind::Softmax => 2.0 * x,
            LayerKind::Dropout => y,
            LayerKind::Add => y,
            LayerKind::Concat => 0.0,
            LayerKind::Lstm { hidden } => {
                let (len, d) = input.seq_dims().expect("LSTM needs sequence");
                let (len, d, h) = (len as f64, d as f64, *hidden as f64);
                // Gate GEMMs per step (4 gates over input+recurrent)…
                let gemm = 4.0 * (d * h + h * h) * FLOPS_PER_MAC;
                // …plus the paper's 20·|Y| element-wise combination ops.
                len * (gemm + 20.0 * h)
            }
            LayerKind::SelfAttention { heads, d_model } => {
                let (len, _) = input.seq_dims().expect("attention needs sequence");
                let dk = *d_model as f64 / *heads as f64;
                // Paper III-C.6 proxy per head: 4·d_k³ + d_k² + 2·d_k,
                // evaluated once per (head, query position)…
                let per_head = 4.0 * dk.powi(3) + dk.powi(2) + 2.0 * dk;
                // …plus QKV/output projections (4 d² MACs per token), the
                // "adjust per variant" rule of the paper.
                let d = *d_model as f64;
                let proj = 4.0 * d * d * FLOPS_PER_MAC;
                len as f64 * (*heads as f64 * per_head + proj)
            }
            LayerKind::TransformerBlock { heads, d_model } => {
                let (len, _) = input.seq_dims().expect("transformer needs sequence");
                let (len, d) = (len as f64, *d_model as f64);
                // Projections: QKV + out = 4d²; MLP d→4d→d = 8d² MACs/token.
                let proj = (4.0 * d * d + 8.0 * d * d) * FLOPS_PER_MAC;
                // Score and value matmuls: 2·len·d MACs per token.
                let attn = 2.0 * len * d * FLOPS_PER_MAC;
                // Softmax over len scores per (head, token) + 2 layer-norms.
                let small = 2.0 * len * *heads as f64 + 2.0 * (4.0 * d + 2.0 * d);
                len * (proj + attn + small)
            }
            LayerKind::Embedding { .. } => 0.0,
        }
    }

    /// Backward-pass FLOPs for one sample.
    ///
    /// Parametric layers compute both ∂L/∂x and ∂L/∂W, each costing about as
    /// much as the forward pass (the standard 2× rule used by e.g. the
    /// Megatron-LM and Checkmate cost models); element-wise layers cost ~1×.
    pub fn backward_flops(&self, input: &Shape, output: &Shape) -> f64 {
        let mult = match self {
            LayerKind::Conv2d { .. }
            | LayerKind::ConvTranspose2d { .. }
            | LayerKind::FullyConnected { .. }
            | LayerKind::Lstm { .. }
            | LayerKind::SelfAttention { .. }
            | LayerKind::TransformerBlock { .. } => 2.0,
            LayerKind::BatchNorm2d | LayerKind::LayerNorm => 1.5,
            LayerKind::Input | LayerKind::Embedding { .. } => 0.0,
            _ => 1.0,
        };
        self.forward_flops(input, output) * mult
    }

    /// True if the layer owns trainable parameters.
    #[inline]
    pub fn is_parametric(&self, input: &Shape) -> bool {
        self.params(input) > 0
    }

    /// Short mnemonic used in plan pretty-printing and Fig. 7-style output.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            LayerKind::Input => "in",
            LayerKind::Conv2d { .. } => "conv",
            LayerKind::ReLU => "relu",
            LayerKind::MaxPool2d { .. } => "maxpool",
            LayerKind::AvgPool2d { .. } => "avgpool",
            LayerKind::GlobalAvgPool => "gap",
            LayerKind::BatchNorm2d => "bn",
            LayerKind::LayerNorm => "ln",
            LayerKind::FullyConnected { .. } => "fc",
            LayerKind::Softmax => "softmax",
            LayerKind::Dropout => "drop",
            LayerKind::Add => "add",
            LayerKind::Concat => "cat",
            LayerKind::Flatten => "flat",
            LayerKind::Lstm { .. } => "lstm",
            LayerKind::SelfAttention { .. } => "attn",
            LayerKind::TransformerBlock { .. } => "xfmr",
            LayerKind::Embedding { .. } => "emb",
            LayerKind::ConvTranspose2d { .. } => "deconv",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_flops_match_paper_formula() {
        // 3x3 conv, 64 -> 64 channels on 56x56: |Y|·K·K·C_i MACs.
        let k = LayerKind::Conv2d {
            in_ch: 64,
            out_ch: 64,
            kernel: 3,
            stride: 1,
            padding: 1,
        };
        let input = Shape::chw(64, 56, 56);
        let output = k.out_shape(&input, None);
        assert_eq!(output, Shape::chw(64, 56, 56));
        let y = output.elements() as f64;
        assert_eq!(k.forward_flops(&input, &output), y * 9.0 * 64.0 * 2.0);
    }

    #[test]
    fn relu_costs_one_comparison_per_output() {
        let k = LayerKind::ReLU;
        let s = Shape::chw(64, 8, 8);
        assert_eq!(k.forward_flops(&s, &s), s.elements() as f64);
    }

    #[test]
    fn fc_flops_and_params() {
        let k = LayerKind::FullyConnected {
            in_features: 2048,
            out_features: 1000,
        };
        let input = Shape::vec(2048);
        let out = k.out_shape(&input, None);
        assert_eq!(out, Shape::vec(1000));
        assert_eq!(k.params(&input), 2048 * 1000 + 1000);
        assert_eq!(k.forward_flops(&input, &out), 2048.0 * 1000.0 * 2.0);
    }

    #[test]
    fn batchnorm_matches_paper_counting() {
        let k = LayerKind::BatchNorm2d;
        let s = Shape::chw(16, 4, 4);
        let x = s.elements() as f64;
        assert_eq!(k.forward_flops(&s, &s), 3.0 + 4.0 * x + 2.0 * x);
        assert_eq!(k.params(&s), 32); // scale + shift per channel
    }

    #[test]
    fn softmax_costs_two_per_input() {
        let k = LayerKind::Softmax;
        let s = Shape::vec(1000);
        assert_eq!(k.forward_flops(&s, &s), 2000.0);
    }

    #[test]
    fn residual_add_requires_matching_shapes() {
        let k = LayerKind::Add;
        let s = Shape::chw(256, 56, 56);
        assert_eq!(k.out_shape(&s, Some(&s)), s);
    }

    #[test]
    #[should_panic(expected = "identical shapes")]
    fn residual_add_rejects_mismatch() {
        let k = LayerKind::Add;
        let a = Shape::chw(256, 56, 56);
        let b = Shape::chw(128, 56, 56);
        k.out_shape(&a, Some(&b));
    }

    #[test]
    fn concat_sums_channels() {
        let k = LayerKind::Concat;
        let a = Shape::chw(256, 28, 28);
        let b = Shape::chw(128, 28, 28);
        assert_eq!(k.out_shape(&a, Some(&b)), Shape::chw(384, 28, 28));
    }

    #[test]
    fn transformer_block_params_match_analytic_count() {
        // GPT-2 small-ish: d=768. Params/layer ≈ 12·d² + low-order terms.
        let k = LayerKind::TransformerBlock {
            heads: 12,
            d_model: 768,
        };
        let input = Shape::seq(1024, 768);
        let p = k.params(&input) as f64;
        let d = 768.0_f64;
        assert!((p - 12.0 * d * d).abs() / (12.0 * d * d) < 0.01);
    }

    #[test]
    fn megatron_8b_parameter_count_is_plausible() {
        // Megatron-LM 8.3B config: H=3072, L=72 (Table IV). Per-layer 12·H²
        // ⇒ 72 · 12 · 3072² ≈ 8.15B, plus embeddings ≈ 8.3B total.
        let k = LayerKind::TransformerBlock {
            heads: 32,
            d_model: 3072,
        };
        let input = Shape::seq(1024, 3072);
        let total = 72 * k.params(&input)
            + LayerKind::Embedding {
                vocab: 50257,
                d_model: 3072,
            }
            .params(&Shape::vec(1024));
        let b = total as f64 / 1e9;
        assert!((8.0..9.0).contains(&b), "got {b} B params");
    }

    #[test]
    fn lstm_flops_include_gemm_and_pointwise() {
        let k = LayerKind::Lstm { hidden: 128 };
        let input = Shape::seq(10, 64);
        let out = k.out_shape(&input, None);
        assert_eq!(out, Shape::seq(10, 128));
        let per_step_gemm = 4.0 * (64.0 * 128.0 + 128.0 * 128.0) * 2.0;
        let expect = 10.0 * (per_step_gemm + 20.0 * 128.0);
        assert_eq!(k.forward_flops(&input, &out), expect);
    }

    #[test]
    fn backward_is_twice_forward_for_parametric_layers() {
        let k = LayerKind::Conv2d {
            in_ch: 3,
            out_ch: 8,
            kernel: 3,
            stride: 1,
            padding: 1,
        };
        let input = Shape::chw(3, 16, 16);
        let out = k.out_shape(&input, None);
        assert_eq!(
            k.backward_flops(&input, &out),
            2.0 * k.forward_flops(&input, &out)
        );
    }

    #[test]
    fn flatten_is_free_and_reshapes() {
        let k = LayerKind::Flatten;
        let input = Shape::chw(2048, 1, 1);
        assert_eq!(k.out_shape(&input, None), Shape::vec(2048));
        assert_eq!(k.forward_flops(&input, &Shape::vec(2048)), 0.0);
    }

    #[test]
    fn conv_transpose_upsamples() {
        let k = LayerKind::ConvTranspose2d {
            in_ch: 128,
            out_ch: 64,
            kernel: 2,
            stride: 2,
        };
        let input = Shape::chw(128, 14, 14);
        assert_eq!(k.out_shape(&input, None), Shape::chw(64, 28, 28));
    }
}

//! Blocks of consecutive layers (paper footnote 1) and partitions of a model
//! into blocks — the unit at which KARMA computes, swaps and updates weights.

use serde::{Deserialize, Serialize};
use std::ops::Range;

use crate::graph::ModelGraph;
use crate::memory::{LayerMemory, MemoryParams};

/// A block: the half-open layer range `[start, end)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Block {
    /// Index of the block within its partition.
    pub index: usize,
    /// Layer range (topological ids).
    pub layers: Range<usize>,
}

impl Block {
    /// Number of layers in the block.
    #[inline]
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// True if the block is empty (never valid inside a partition).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// True if the block contains layer `id`.
    #[inline]
    pub fn contains(&self, id: usize) -> bool {
        self.layers.contains(&id)
    }
}

/// Aggregate costs of one block at a fixed batch size — the inputs to the
/// occupancy model and both optimization problems (paper Fig. 4).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BlockCost {
    /// Forward compute FLOPs.
    pub forward_flops: f64,
    /// Backward compute FLOPs.
    pub backward_flops: f64,
    /// Memory decomposition aggregated over the block's layers.
    pub memory: LayerMemory,
    /// Trainable parameters in the block.
    pub params: u64,
}

impl BlockCost {
    /// Bytes transferred when the block's saved state is swapped out after
    /// its forward pass (activations; weights stay unless the planner also
    /// evicts model state).
    #[inline]
    pub fn swap_bytes(&self) -> u64 {
        self.memory.activations
    }

    /// Bytes for the full block state including weights — what data-parallel
    /// KARMA moves when the block is swapped out for the CPU-side update
    /// (paper Sec. III-G).
    #[inline]
    pub fn swap_bytes_with_weights(&self) -> u64 {
        self.memory.activations + self.memory.weights
    }

    /// Gradient bytes exchanged for this block in the phased AllReduce.
    #[inline]
    pub fn gradient_bytes(&self) -> u64 {
        self.memory.weight_grads
    }
}

/// A partition of `0..n_layers` into contiguous, pairwise-disjoint, complete
/// blocks (constraints 9.1–9.2 of the paper's Optimization Problem 1).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockPartition {
    /// Block start indices, strictly increasing, first element 0.
    boundaries: Vec<usize>,
    /// Total layer count (the exclusive end of the last block).
    n_layers: usize,
}

impl BlockPartition {
    /// Build from block start indices. `boundaries\[0\]` must be 0 and entries
    /// strictly increase below `n_layers`.
    pub fn new(boundaries: Vec<usize>, n_layers: usize) -> Result<Self, String> {
        if n_layers == 0 {
            return Err("partition over zero layers".into());
        }
        if boundaries.first() != Some(&0) {
            return Err("first boundary must be 0".into());
        }
        for w in boundaries.windows(2) {
            if w[1] <= w[0] {
                return Err(format!("boundaries not strictly increasing: {w:?}"));
            }
        }
        if let Some(&last) = boundaries.last() {
            if last >= n_layers {
                return Err(format!("boundary {last} beyond n_layers {n_layers}"));
            }
        }
        Ok(BlockPartition {
            boundaries,
            n_layers,
        })
    }

    /// The trivial partition: every layer its own block.
    pub fn singletons(n_layers: usize) -> Self {
        BlockPartition::new((0..n_layers).collect(), n_layers).unwrap()
    }

    /// One block containing the whole model.
    pub fn whole(n_layers: usize) -> Self {
        BlockPartition::new(vec![0], n_layers).unwrap()
    }

    /// Split into `k` blocks of near-equal layer counts.
    pub fn uniform(n_layers: usize, k: usize) -> Self {
        let k = k.clamp(1, n_layers);
        let bounds = (0..k).map(|i| i * n_layers / k).collect::<Vec<_>>();
        // Integer division can duplicate boundaries when k > n_layers; the
        // clamp above prevents that.
        BlockPartition::new(bounds, n_layers).unwrap()
    }

    /// Number of blocks.
    #[inline]
    pub fn num_blocks(&self) -> usize {
        self.boundaries.len()
    }

    /// Total layers covered.
    #[inline]
    pub fn n_layers(&self) -> usize {
        self.n_layers
    }

    /// Iterate blocks in forward order.
    pub fn blocks(&self) -> impl Iterator<Item = Block> + '_ {
        (0..self.boundaries.len()).map(move |i| self.block(i))
    }

    /// The `i`-th block.
    pub fn block(&self, i: usize) -> Block {
        let start = self.boundaries[i];
        let end = self.boundaries.get(i + 1).copied().unwrap_or(self.n_layers);
        Block {
            index: i,
            layers: start..end,
        }
    }

    /// Which block contains layer `id`.
    pub fn block_of(&self, id: usize) -> usize {
        assert!(id < self.n_layers, "layer {id} out of range");
        match self.boundaries.binary_search(&id) {
            Ok(i) => i,
            Err(i) => i - 1,
        }
    }

    /// Block start indices.
    pub fn boundaries(&self) -> &[usize] {
        &self.boundaries
    }

    /// Aggregate per-block costs for `graph` at `batch`.
    pub fn costs(&self, graph: &ModelGraph, batch: usize, p: &MemoryParams) -> Vec<BlockCost> {
        assert_eq!(
            self.n_layers,
            graph.len(),
            "partition covers {} layers but graph has {}",
            self.n_layers,
            graph.len()
        );
        self.blocks()
            .map(|b| {
                let mut cost = BlockCost {
                    forward_flops: 0.0,
                    backward_flops: 0.0,
                    memory: LayerMemory::default(),
                    params: 0,
                };
                for l in &graph.layers[b.layers.clone()] {
                    cost.forward_flops += l.forward_flops(batch);
                    cost.backward_flops += l.backward_flops(batch);
                    cost.memory = cost.memory.add(&l.memory(batch, p));
                    cost.params += l.params();
                }
                cost
            })
            .collect()
    }

    /// True when every skip edge of `graph` lands in the same or the
    /// immediately following block — the "affine residual" property the
    /// paper observes optimal plans have (Sec. III-F.4).
    pub fn respects_skips_locally(&self, graph: &ModelGraph) -> bool {
        graph
            .skip_edges()
            .iter()
            .all(|&(src, dst)| self.block_of(dst) <= self.block_of(src) + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::shape::Shape;

    fn chain(n_convs: usize) -> ModelGraph {
        let mut b = GraphBuilder::new("chain", Shape::chw(4, 8, 8));
        for _ in 0..n_convs {
            b.conv(4, 3, 1, 1);
        }
        b.build()
    }

    #[test]
    fn partition_construction_and_lookup() {
        let p = BlockPartition::new(vec![0, 3, 7], 10).unwrap();
        assert_eq!(p.num_blocks(), 3);
        assert_eq!(p.block(0).layers, 0..3);
        assert_eq!(p.block(1).layers, 3..7);
        assert_eq!(p.block(2).layers, 7..10);
        assert_eq!(p.block_of(0), 0);
        assert_eq!(p.block_of(2), 0);
        assert_eq!(p.block_of(3), 1);
        assert_eq!(p.block_of(9), 2);
    }

    #[test]
    fn partition_covers_all_layers_disjointly() {
        // Constraints 9.1 and 9.2: complete and pairwise disjoint.
        let p = BlockPartition::new(vec![0, 2, 5, 6], 9).unwrap();
        let mut seen = [0u32; 9];
        for b in p.blocks() {
            for l in b.layers {
                seen[l] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn invalid_partitions_rejected() {
        assert!(BlockPartition::new(vec![1, 3], 5).is_err()); // no 0
        assert!(BlockPartition::new(vec![0, 3, 3], 5).is_err()); // dup
        assert!(BlockPartition::new(vec![0, 5], 5).is_err()); // at end
        assert!(BlockPartition::new(vec![0], 0).is_err()); // empty model
    }

    #[test]
    fn uniform_partition_is_balanced() {
        let p = BlockPartition::uniform(10, 3);
        let sizes: Vec<usize> = p.blocks().map(|b| b.len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().all(|&s| (3..=4).contains(&s)));
        // Degenerate ks clamp.
        assert_eq!(BlockPartition::uniform(4, 100).num_blocks(), 4);
        assert_eq!(BlockPartition::uniform(4, 0).num_blocks(), 1);
    }

    #[test]
    fn block_costs_sum_to_graph_totals() {
        let g = chain(6);
        let p = BlockPartition::uniform(g.len(), 3);
        let mp = MemoryParams::exact();
        let costs = p.costs(&g, 2, &mp);
        let fwd: f64 = costs.iter().map(|c| c.forward_flops).sum();
        assert!((fwd - g.forward_flops(2)).abs() < 1e-6);
        let params: u64 = costs.iter().map(|c| c.params).sum();
        assert_eq!(params, g.total_params());
        let act: u64 = costs.iter().map(|c| c.memory.activations).sum();
        assert_eq!(act, g.memory(2, &mp).activations);
    }

    #[test]
    fn respects_skips_for_local_residuals() {
        let mut b = GraphBuilder::new("res", Shape::chw(4, 4, 4));
        let t = b.conv(4, 3, 1, 1);
        b.conv(4, 3, 1, 1);
        let e = b.cursor();
        b.add(t, e);
        let g = b.build();
        // Whole-model partition trivially respects skips.
        assert!(BlockPartition::whole(g.len()).respects_skips_locally(&g));
        // Singletons: the skip from t jumps 2 blocks -> violated.
        assert!(!BlockPartition::singletons(g.len()).respects_skips_locally(&g));
    }

    #[test]
    fn singleton_and_whole_partitions() {
        let s = BlockPartition::singletons(5);
        assert_eq!(s.num_blocks(), 5);
        assert!(s.blocks().all(|b| b.len() == 1));
        let w = BlockPartition::whole(5);
        assert_eq!(w.num_blocks(), 1);
        assert_eq!(w.block(0).layers, 0..5);
    }
}

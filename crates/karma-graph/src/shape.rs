//! Per-sample tensor shapes.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A per-sample tensor shape (the batch dimension is *not* stored; cost
/// queries scale by batch explicitly, mirroring the paper's batch-size
/// projection of profiled footprints).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape(pub Vec<usize>);

impl Shape {
    /// Feature-map shape `C × H × W`.
    pub fn chw(c: usize, h: usize, w: usize) -> Self {
        Shape(vec![c, h, w])
    }

    /// Flat feature vector of dimension `d`.
    pub fn vec(d: usize) -> Self {
        Shape(vec![d])
    }

    /// Sequence of `len` tokens with `d`-dimensional features.
    pub fn seq(len: usize, d: usize) -> Self {
        Shape(vec![len, d])
    }

    /// Scalar (e.g. a loss value).
    pub fn scalar() -> Self {
        Shape(vec![])
    }

    /// Number of elements per sample.
    #[inline]
    pub fn elements(&self) -> u64 {
        self.0.iter().map(|&d| d as u64).product()
    }

    /// Channel count for a CHW shape; `None` otherwise.
    pub fn channels(&self) -> Option<usize> {
        (self.0.len() == 3).then(|| self.0[0])
    }

    /// `(h, w)` for a CHW shape; `None` otherwise.
    pub fn hw(&self) -> Option<(usize, usize)> {
        (self.0.len() == 3).then(|| (self.0[1], self.0[2]))
    }

    /// `(len, d)` for a sequence shape; `None` otherwise.
    pub fn seq_dims(&self) -> Option<(usize, usize)> {
        (self.0.len() == 2).then(|| (self.0[0], self.0[1]))
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, ")")
    }
}

/// Output spatial size of a convolution/pooling window:
/// `floor((in + 2*pad - kernel) / stride) + 1`.
#[inline]
pub fn conv_out(input: usize, kernel: usize, stride: usize, pad: usize) -> usize {
    assert!(stride > 0, "stride must be positive");
    assert!(
        input + 2 * pad >= kernel,
        "window larger than padded input: in={input} k={kernel} pad={pad}"
    );
    (input + 2 * pad - kernel) / stride + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn element_counts() {
        assert_eq!(Shape::chw(3, 224, 224).elements(), 3 * 224 * 224);
        assert_eq!(Shape::vec(1000).elements(), 1000);
        assert_eq!(Shape::seq(1024, 3072).elements(), 1024 * 3072);
        assert_eq!(Shape::scalar().elements(), 1);
    }

    #[test]
    fn conv_out_formula() {
        // 224x224, 7x7 stride 2 pad 3 -> 112 (ResNet stem).
        assert_eq!(conv_out(224, 7, 2, 3), 112);
        // 3x3 stride 1 pad 1 preserves size.
        assert_eq!(conv_out(56, 3, 1, 1), 56);
        // 1x1 stride 1 preserves size.
        assert_eq!(conv_out(56, 1, 1, 0), 56);
        // 3x3 max-pool stride 2 pad 1 on 112 -> 56.
        assert_eq!(conv_out(112, 3, 2, 1), 56);
    }

    #[test]
    #[should_panic(expected = "window larger")]
    fn conv_out_rejects_oversized_window() {
        conv_out(2, 7, 1, 0);
    }

    #[test]
    fn shape_display() {
        assert_eq!(Shape::chw(3, 224, 224).to_string(), "(3x224x224)");
        assert_eq!(Shape::scalar().to_string(), "()");
    }

    #[test]
    fn accessors() {
        let s = Shape::chw(64, 56, 56);
        assert_eq!(s.channels(), Some(64));
        assert_eq!(s.hw(), Some((56, 56)));
        assert_eq!(s.seq_dims(), None);
        let t = Shape::seq(128, 768);
        assert_eq!(t.seq_dims(), Some((128, 768)));
        assert_eq!(t.channels(), None);
    }
}

//! Table IV: Megatron-LM configurations — the MP+DP hybrid at its GPU
//! count vs data-parallel KARMA at half the GPUs.
//!
//! The paper labels the Perf column "Iter./sec"; at these model sizes the
//! physically consistent reading is seconds/iteration (see EXPERIMENTS.md),
//! and the reproduction reports seconds/iteration for both systems. The
//! zero-shot perplexity column is substituted by the bit-parity argument
//! (training to convergence at 8.3B parameters is outside any
//! reproduction's budget; the two largest rows were infeasible for the
//! authors as well).

use karma_dist::{hybrid_iter_time, karma_dp_iteration, DistOptions, HybridConfig};
use karma_graph::MemoryParams;
use karma_hw::ClusterSpec;
use karma_zoo::transformer::{megatron, megatron_table4};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// One Table IV row, reproduced.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table4Row {
    /// Hidden size.
    pub hidden: usize,
    /// Attention heads.
    pub heads: usize,
    /// Layers.
    pub layers: usize,
    /// Nominal parameter count (B).
    pub params_b: f64,
    /// MP ways of the original.
    pub mp: usize,
    /// Hybrid GPU count.
    pub hybrid_gpus: usize,
    /// Hybrid seconds/iteration.
    pub hybrid_s_per_iter: f64,
    /// KARMA GPU count (half the hybrid's).
    pub karma_gpus: usize,
    /// KARMA seconds/iteration.
    pub karma_s_per_iter: f64,
    /// KARMA per-GPU efficiency relative to the hybrid:
    /// `(hybrid_s * hybrid_gpus) / (karma_s * karma_gpus)` at equal global
    /// batch per iteration-sample accounting.
    pub karma_per_gpu_advantage: f64,
}

/// Per-GPU KARMA batch (sequences); constant across rows as in the paper's
/// setup (each KARMA GPU carries one former MP group's work).
pub const KARMA_PER_GPU_BATCH: usize = 16;

/// Reproduce the table.
pub fn rows() -> Vec<Table4Row> {
    let mem = MemoryParams::default();
    // Each configuration row is independent; sweep them in parallel
    // (order-preserving collect keeps the table's row order).
    megatron_table4()
        .into_par_iter()
        .map(|cfg| {
            let g = megatron(&cfg);
            let hybrid_cluster = ClusterSpec::abci_with_gpus(cfg.hybrid_gpus);
            let hybrid_cfg = HybridConfig::megatron(cfg.model_parallel, false);
            let hybrid_s = hybrid_iter_time(&g, &hybrid_cfg, &hybrid_cluster, cfg.hybrid_gpus);
            let karma_cluster = ClusterSpec::abci_with_gpus(cfg.karma_gpus);
            let karma = karma_dp_iteration(
                &g,
                KARMA_PER_GPU_BATCH,
                &karma_cluster,
                &mem,
                &DistOptions::default(),
            );
            // Samples/GPU/s ratio (hybrid global batch fixed at 512).
            let hybrid_global = 512.0;
            let karma_global = (KARMA_PER_GPU_BATCH * cfg.karma_gpus) as f64;
            let hybrid_per_gpu = hybrid_global / hybrid_s / cfg.hybrid_gpus as f64;
            let karma_per_gpu = karma_global / karma.iter_time / cfg.karma_gpus as f64;
            Table4Row {
                hidden: cfg.hidden,
                heads: cfg.heads,
                layers: cfg.layers,
                params_b: cfg.nominal_params_b,
                mp: cfg.model_parallel,
                hybrid_gpus: cfg.hybrid_gpus,
                hybrid_s_per_iter: hybrid_s,
                karma_gpus: cfg.karma_gpus,
                karma_s_per_iter: karma.iter_time,
                karma_per_gpu_advantage: karma_per_gpu / hybrid_per_gpu,
            }
        })
        .collect()
}

//! Fig. 8: parity-GPU scaling of Megatron-LM (2.5B, 8.3B) and Turing-NLG
//! (17B): time per epoch (hours) vs GPU count for the MP+DP hybrid (plain
//! and with the phased gradient exchange), data-parallel KARMA, ZeRO,
//! and ZeRO+KARMA.

use karma_dist::{
    hybrid_iter_time, karma_dp_iteration, zero_iter_time, DistOptions, HybridConfig, ZeroConfig,
};
use karma_graph::MemoryParams;
use karma_hw::ClusterSpec;
use karma_zoo::datasets::DatasetSpec;
use karma_zoo::transformer::{megatron, megatron_table4, turing_nlg, MegatronConfig};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// One curve point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig8Point {
    /// Model label.
    pub model: String,
    /// Method label.
    pub method: String,
    /// GPU count (parity across methods).
    pub gpus: usize,
    /// Hours per OpenWebText epoch.
    pub hours_per_epoch: f64,
}

/// Megatron's fixed global batch (sequences).
pub const GLOBAL_BATCH: usize = 512;

fn epoch_hours(iter_time: f64, global_batch: u64) -> f64 {
    let iters = DatasetSpec::openwebtext().iters_per_epoch(global_batch);
    iter_time * iters as f64 / 3600.0
}

/// The Megatron panels: hybrid, hybrid+phased, KARMA (DP parity).
pub fn megatron_series(cfg: &MegatronConfig, gpus_list: &[usize]) -> Vec<Fig8Point> {
    let g = megatron(cfg);
    let mem = MemoryParams::default();
    // Each GPU count is an independent column of the figure — sweep them in
    // parallel, preserving x-axis order.
    let columns: Vec<Vec<Fig8Point>> = gpus_list
        .iter()
        .copied()
        .filter(|&gpus| gpus >= cfg.model_parallel)
        .collect::<Vec<_>>()
        .par_iter()
        .map(|&gpus| {
            let mut out = Vec::with_capacity(3);
            let cluster = ClusterSpec::abci_with_gpus(gpus);

            for (label, phased) in [
                ("MP+DP Megatron-LM", false),
                ("MP+DP (opt. gradient ex.)", true),
            ] {
                let t = hybrid_iter_time(
                    &g,
                    &HybridConfig::megatron(cfg.model_parallel, phased),
                    &cluster,
                    gpus,
                );
                out.push(Fig8Point {
                    model: g.name.clone(),
                    method: label.to_owned(),
                    gpus,
                    hours_per_epoch: epoch_hours(t, GLOBAL_BATCH as u64),
                });
            }

            // KARMA at parity: every GPU is a replica; the global batch is the
            // hybrid's multiplied by the MP factor (Fig. 8 caption), so KARMA
            // runs m-fold fewer communication rounds per epoch.
            let global_karma = (GLOBAL_BATCH * cfg.model_parallel) as u64;
            let per_gpu = (global_karma as usize / gpus).max(1);
            let r = karma_dp_iteration(&g, per_gpu, &cluster, &mem, &DistOptions::default());
            out.push(Fig8Point {
                model: g.name.clone(),
                method: "KARMA (DP parity)".to_owned(),
                gpus,
                hours_per_epoch: epoch_hours(r.iter_time, (per_gpu * gpus) as u64),
            });
            out
        })
        .collect();
    columns.into_iter().flatten().collect()
}

/// The Turing-NLG panel: ZeRO, KARMA, ZeRO+KARMA.
pub fn turing_series(gpus_list: &[usize]) -> Vec<Fig8Point> {
    let g = turing_nlg();
    let mem = MemoryParams::default();
    let columns: Vec<Vec<Fig8Point>> = gpus_list
        .par_iter()
        .map(|&gpus| {
            let mut out = Vec::with_capacity(3);
            let cluster = ClusterSpec::abci_with_gpus(gpus);

            // ZeRO reference: MP=4 within the node, ZeRO-DP across nodes.
            let zero_cfg = ZeroConfig {
                model_parallel: 4,
                global_batch: GLOBAL_BATCH,
            };
            let t_zero = zero_iter_time(&g, &zero_cfg, &cluster, gpus);
            out.push(Fig8Point {
                model: g.name.clone(),
                method: "ZeRO".to_owned(),
                gpus,
                hours_per_epoch: epoch_hours(t_zero, GLOBAL_BATCH as u64),
            });

            // Pure data-parallel KARMA (streams 17B of state per iteration —
            // slower than ZeRO at equal GPUs, as the paper reports); global
            // batch x4 (the ZeRO hybrid's MP factor), per the parity rule.
            let global_karma = GLOBAL_BATCH * 4;
            let per_gpu = (global_karma / gpus).max(1);
            let karma = karma_dp_iteration(&g, per_gpu, &cluster, &mem, &DistOptions::default());
            out.push(Fig8Point {
                model: g.name.clone(),
                method: "KARMA".to_owned(),
                gpus,
                hours_per_epoch: epoch_hours(karma.iter_time, (gpus * per_gpu) as u64),
            });

            // ZeRO + KARMA: partitioned state rides the swap pipeline.
            let both = karma_dp_iteration(
                &g,
                per_gpu,
                &cluster,
                &mem,
                &DistOptions {
                    zero_partition: true,
                    ..Default::default()
                },
            );
            out.push(Fig8Point {
                model: g.name.clone(),
                method: "ZeRO + KARMA".to_owned(),
                gpus,
                hours_per_epoch: epoch_hours(both.iter_time, (gpus * per_gpu) as u64),
            });
            out
        })
        .collect();
    columns.into_iter().flatten().collect()
}

/// Convenience: the two Megatron configurations the figure plots.
pub fn figure_configs() -> (MegatronConfig, MegatronConfig) {
    let t = megatron_table4();
    (t[2], t[4]) // 2.5B and 8.3B
}

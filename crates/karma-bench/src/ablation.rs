//! Ablations (DESIGN.md experiments X1/X2): which parts of KARMA buy the
//! speedup, and does the ACO actually find good blockings?

use karma_core::capacity::{build_training_plan, CapacityPlanOptions, PrefetchPolicy};
use karma_core::cost::LayerCostTable;
use karma_core::lower::{simulate_plan, LowerOptions};
use karma_core::opt::{optimize_blocking, refine_recompute, OptConfig};
use karma_graph::{BlockPartition, MemoryParams, ModelGraph};
use karma_hw::NodeSpec;
use karma_zoo::fig5_workloads;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// X1: strategy ablation — one model/batch, four strategy variants.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StrategyAblation {
    /// Model name.
    pub model: String,
    /// Batch size.
    pub batch: usize,
    /// Eager swap-everything (vDNN-style), same blocking.
    pub eager_makespan: f64,
    /// Capacity-based residency, no prefetch beyond one step.
    pub capacity_no_prefetch: f64,
    /// Capacity-based + capacity prefetch (KARMA, Fig. 2 (b)).
    pub capacity_prefetch: f64,
    /// + recompute interleave (KARMA w/ recompute, Fig. 2 (c)).
    pub with_recompute: f64,
}

/// Run X1 on one workload at its mid out-of-core batch.
pub fn strategy_ablation(model_name: &str) -> StrategyAblation {
    let w = fig5_workloads()
        .into_iter()
        .find(|w| w.model.name == model_name)
        .expect("model in zoo");
    let batch = w.batch_sizes[w.batch_sizes.len() / 2];
    let node = NodeSpec::abci();
    let table = LayerCostTable::from_graph(&w.model, batch, &node, &w.mem);
    let bounds = optimize_blocking(&table, &OptConfig::fast(17));
    let costs = table.block_costs(&bounds);
    let n = costs.n_blocks();

    let run = |opts: &CapacityPlanOptions| -> f64 {
        let cp = build_training_plan(&costs, opts);
        let (_t, m) = simulate_plan(&cp.plan, &costs, &LowerOptions::default());
        m.makespan
    };

    let eager = run(&CapacityPlanOptions {
        recompute: vec![false; n],
        resident_from: Some(n),
        prefetch: PrefetchPolicy::OneAhead,
        sync_swap_out: false,
    });
    let cap_no_pf = run(&CapacityPlanOptions {
        recompute: vec![false; n],
        resident_from: None,
        prefetch: PrefetchPolicy::None,
        sync_swap_out: false,
    });
    let cap_pf = run(&CapacityPlanOptions::karma(n));
    let rc = refine_recompute(&costs);
    let with_rc = run(&CapacityPlanOptions::karma_with_recompute(rc));

    StrategyAblation {
        model: w.model.name,
        batch,
        eager_makespan: eager,
        capacity_no_prefetch: cap_no_pf,
        capacity_prefetch: cap_pf,
        with_recompute: with_rc,
    }
}

/// X2: solver ablation — ACO blocking vs uniform blockings on a model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SolverAblation {
    /// Model name.
    pub model: String,
    /// Batch size.
    pub batch: usize,
    /// Simulated makespan of the ACO blocking.
    pub aco_makespan: f64,
    /// Best uniform blocking's makespan (over several k).
    pub best_uniform_makespan: f64,
    /// Number of blocks the ACO chose.
    pub aco_blocks: usize,
}

/// Run X2.
pub fn solver_ablation(graph: &ModelGraph, batch: usize, mem: &MemoryParams) -> SolverAblation {
    let node = NodeSpec::abci();
    let table = LayerCostTable::from_graph(graph, batch, &node, mem);
    let score = |bounds: &[usize]| -> f64 {
        let costs = table.block_costs(bounds);
        if !costs.is_schedulable() {
            return f64::INFINITY;
        }
        let cp = build_training_plan(&costs, &CapacityPlanOptions::karma(costs.n_blocks()));
        let (_t, m) = simulate_plan(&cp.plan, &costs, &LowerOptions::default());
        if m.capacity_ok {
            m.makespan
        } else {
            f64::INFINITY
        }
    };

    let aco_bounds = optimize_blocking(&table, &OptConfig::fast(23));
    let aco = score(&aco_bounds);
    // Each uniform-k reference is an independent plan + simulation.
    let best_uniform = [4usize, 8, 16, 32, 64]
        .par_iter()
        .map(|&k| score(BlockPartition::uniform(graph.len(), k.clamp(1, graph.len())).boundaries()))
        .collect::<Vec<_>>()
        .into_iter()
        .fold(f64::INFINITY, f64::min);
    SolverAblation {
        model: graph.name.clone(),
        batch,
        aco_makespan: aco,
        best_uniform_makespan: best_uniform,
        aco_blocks: aco_bounds.len(),
    }
}

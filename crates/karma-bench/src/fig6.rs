//! Fig. 6: normalized runtime of the backward phase of ResNet-200,
//! per layer from back to front: an out-of-core run (batch 12) stacked on
//! an in-core run (batch 4). The bars include each layer's stall from
//! swapping/recompute; spikes localize where each method's pipeline
//! starves.

use karma_baselines::{run_baseline, Baseline};
use karma_core::planner::{Karma, KarmaOptions};
use karma_hw::NodeSpec;
use karma_sim::Trace;
use karma_zoo::fig5_workloads;
use serde::{Deserialize, Serialize};

/// One bar of the figure.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig6Bar {
    /// Position from the back of the model (0 = last layer's backward).
    pub position: usize,
    /// Backward time plus attributed stall, normalized to the in-core
    /// backward time of the same span at the same batch size.
    pub normalized: f64,
}

/// A method's full profile.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig6Profile {
    /// Method name.
    pub method: String,
    /// Bars back-to-front.
    pub bars: Vec<Fig6Bar>,
}

/// In-core batch (first Fig. 5 point) and the OOC batch of the figure.
pub const IN_CORE_BATCH: usize = 4;
/// Out-of-core batch used by Fig. 6.
pub const OOC_BATCH: usize = 12;

fn profile_from_trace(trace: &Trace, method: &str) -> Fig6Profile {
    // Walk compute-lane spans of the backward phase, charging each bar its
    // backward duration plus the stall that preceded it plus any recompute
    // time spent re-forwarding for it; normalize by the backward duration
    // (the in-core cost of the same work at the same batch). Consecutive
    // tiny layers (parameter-free ops with near-zero backward time) are
    // merged into the next substantial bar so ratios stay meaningful.
    let rows = trace.compute_spans_with_stalls();
    let total_bwd: f64 = rows
        .iter()
        .filter(|(l, ..)| l.kind == "B")
        .map(|(_, d, _)| d)
        .sum();
    let bwd_count = rows.iter().filter(|(l, ..)| l.kind == "B").count().max(1);
    let min_dur = total_bwd / bwd_count as f64 * 0.05;

    let mut bars = Vec::new();
    let mut position = 0usize;
    let mut acc_dur = 0.0f64;
    let mut acc_overhead = 0.0f64;
    for (label, dur, stall) in rows {
        match label.kind.as_str() {
            "R" => acc_overhead += dur + stall, // re-forward is pure overhead
            "B" => {
                acc_dur += dur;
                acc_overhead += stall;
                if acc_dur >= min_dur {
                    bars.push(Fig6Bar {
                        position,
                        normalized: (acc_dur + acc_overhead) / acc_dur,
                    });
                    position += 1;
                    acc_dur = 0.0;
                    acc_overhead = 0.0;
                }
            }
            _ => {} // forward phase
        }
    }
    if acc_dur > 0.0 {
        bars.push(Fig6Bar {
            position,
            normalized: (acc_dur + acc_overhead) / acc_dur,
        });
    }
    Fig6Profile {
        method: method.to_owned(),
        bars,
    }
}

/// Produce the four profiles of the figure (SuperNeurons, vDNN++, KARMA,
/// KARMA w/ recompute) for ResNet-200 at the OOC batch.
pub fn profiles() -> Vec<Fig6Profile> {
    use rayon::prelude::*;

    let w = fig5_workloads()
        .into_iter()
        .find(|w| w.model.name == "ResNet-200")
        .expect("zoo has ResNet-200");
    let node = NodeSpec::abci();
    let planner = Karma::new(node.clone(), w.mem.clone());

    // The four method runs are independent simulations — run them in
    // parallel, with the figure's legend order as plain data.
    enum Run {
        Base(Baseline),
        Karma(KarmaOptions),
    }
    let methods = [
        ("SuperNeurons", Run::Base(Baseline::SuperNeurons)),
        ("vDNN++", Run::Base(Baseline::VdnnPlusPlus)),
        ("KARMA", Run::Karma(KarmaOptions::without_recompute())),
        ("KARMA (w/ recomp)", Run::Karma(KarmaOptions::default())),
    ];
    methods
        .par_iter()
        .map(|(label, run)| {
            let trace = match run {
                Run::Base(b) => {
                    run_baseline(*b, &w.model, OOC_BATCH, &node, &w.mem)
                        .unwrap()
                        .trace
                }
                Run::Karma(opts) => planner.plan(&w.model, OOC_BATCH, opts).unwrap().trace,
            };
            profile_from_trace(&trace, label)
        })
        .collect()
}

/// Spike statistics used to check the paper's qualitative claims.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpikeStats {
    /// Method name.
    pub method: String,
    /// Number of bars ≥ 2x the in-core time ("spikes").
    pub spikes: usize,
    /// Largest normalized bar.
    pub max: f64,
    /// Mean normalized bar.
    pub mean: f64,
}

/// Summarize a profile.
pub fn spike_stats(p: &Fig6Profile) -> SpikeStats {
    let spikes = p.bars.iter().filter(|b| b.normalized >= 2.0).count();
    let max = p.bars.iter().map(|b| b.normalized).fold(0.0, f64::max);
    let mean = if p.bars.is_empty() {
        0.0
    } else {
        p.bars.iter().map(|b| b.normalized).sum::<f64>() / p.bars.len() as f64
    };
    SpikeStats {
        method: p.method.clone(),
        spikes,
        max,
        mean,
    }
}

//! Regenerate paper Fig. 7: the best blocking KARMA finds for
//! ResNet-50/ImageNet at batch 512, plus the quoted stall reductions.

use karma_bench::fig7;

fn main() {
    let (plan, r) = fig7::blocking();
    karma_bench::rule(&format!(
        "Fig. 7 — best blocking for ResNet-50 @ batch {} on V100-16GB",
        fig7::BATCH
    ));
    println!(
        "{} blocks over {} layers:",
        r.blocks.len(),
        plan.partition.n_layers()
    );
    for (i, (first, last, len)) in r.blocks.iter().enumerate() {
        println!("  block {i:>2}: [{first} ... {last}] ({len} layers)");
    }
    println!("\nschedule prefix: {} ...", r.notation_prefix);
    println!(
        "\ncompute stall: {:.3} s | reduction vs SuperNeurons {:.0}% (paper 43%) | \
         vs vDNN++ {:.0}% (paper 37%)",
        r.karma_stall,
        r.reduction_vs_superneurons * 100.0,
        r.reduction_vs_vdnn * 100.0
    );
    println!(
        "occupancy {:.1}% | throughput {:.1} samples/s | capacity ok: {}",
        plan.metrics.occupancy * 100.0,
        plan.samples_per_sec(),
        plan.metrics.capacity_ok
    );
}

//! The `check-bench` CI gate: compare a fresh `BENCH_*.json` against the
//! committed baseline and exit non-zero on a regression.
//!
//! Usage: `bench_compare <committed.json> <fresh.json> [--max-slowdown F]`
//!
//! `F` is the tolerated optimized/baseline wall-time-ratio regression as a
//! fraction (default 0.25 = 25%). See `karma_bench::compare` for the
//! normalization rules (machine speed cancels in the ratio; thread-count
//! differences only make the gate lenient; configs must match).

use karma_bench::compare::{compare_reports, DEFAULT_MAX_SLOWDOWN};
use karma_bench::report::BenchReport;

fn load(path: &str) -> BenchReport {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("bench_compare: cannot read {path}: {e}"));
    serde_json::from_str(&text)
        .unwrap_or_else(|e| panic!("bench_compare: {path} is not a bench report: {e:?}"))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let max_slowdown = args
        .iter()
        .position(|a| a == "--max-slowdown")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse::<f64>().expect("--max-slowdown takes a fraction"))
        .unwrap_or(DEFAULT_MAX_SLOWDOWN);
    let paths: Vec<&String> = args
        .iter()
        .enumerate()
        .filter(|&(i, a)| !a.starts_with("--") && (i == 0 || args[i - 1] != "--max-slowdown"))
        .map(|(_, a)| a)
        .collect();
    let [committed, fresh] = paths.as_slice() else {
        eprintln!("usage: bench_compare <committed.json> <fresh.json> [--max-slowdown F]");
        std::process::exit(2);
    };

    let outcome = compare_reports(&load(committed), &load(fresh), max_slowdown);
    for note in &outcome.notes {
        println!("note: {note}");
    }
    if outcome.passed() {
        println!(
            "bench gate OK: {fresh} within {}% of {committed}",
            max_slowdown * 100.0
        );
    } else {
        for failure in &outcome.failures {
            eprintln!("FAIL: {failure}");
        }
        std::process::exit(1);
    }
}

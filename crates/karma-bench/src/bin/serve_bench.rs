//! Plan-serving micro-benchmark: times `PlanServer::serve` cold (full
//! `optimize_blocking` search) against warm (fingerprint hit in the
//! in-memory tier) across the fig5 micro grid — the executable micro
//! zoo models × two out-of-core batch sizes — and records the numbers
//! in `BENCH_serve.json`, the plan-serving perf anchor across PRs.
//!
//! Each grid cell gets two entries **measured in the same run**:
//!
//! * `baseline`  — cold: a fresh server answers the request by running
//!   the full ACO search (fanned out on the persistent pool);
//! * `optimized` — warm: the same server answers the identical request
//!   from the in-memory tier (fingerprint + read lock + `Arc` clone).
//!
//! For this report the `memoize` flag means *plan cache on*, and
//! `blocks` is the served entry's block count — the determinism canary:
//! warm and cold must serve bitwise-identical plans, so the canary is
//! shared by construction and checked here explicitly.
//!
//! The binary also sanity-checks the concurrency contract: hammering
//! one cold fingerprint from several OS threads runs exactly one
//! search, and the ISSUE acceptance floor (warm ≥ 100× faster than
//! cold, per cell) is asserted in-process.
//!
//! Usage: `serve_bench [--smoke] [--out PATH]` — `--smoke` runs one
//! grid cell with fewer timing samples (CI-sized), `--out` overrides
//! the JSON path.

use std::sync::Arc;
use std::time::Instant;

use karma_bench::report::{BenchEntry, BenchReport, ModelSpeedup};
use karma_core::planner::{Karma, KarmaOptions};
use karma_graph::{MemoryParams, ModelGraph};
use karma_hw::{GpuSpec, LinkSpec, NodeSpec};
use karma_serve::{PlanServer, ServeSource};
use karma_zoo::micro::{conv_stack_graph, mlp_stack_graph, resnet_style_graph};

/// A toy node whose GPU holds the model state plus ~65% of the
/// activation footprint, forcing a real out-of-core plan on every grid
/// cell — including the parameter-dominated MLP, whose state must stay
/// resident for the planner to accept the node at all.
fn ooc_node(graph: &ModelGraph, batch: usize, mem: &MemoryParams) -> NodeSpec {
    let state = graph.memory(batch, mem).model_state() as f64;
    let acts = graph.peak_footprint(batch, mem) as f64 - state;
    NodeSpec::toy(
        GpuSpec::toy((state + acts * 0.65) as u64, 5.0e9),
        LinkSpec::toy(4.0e9),
    )
}

/// Median of `samples` milliseconds.
fn median(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

/// Median cold-serve wall ms: every sample uses a *fresh* server, so the
/// full search runs each time.
fn time_cold(
    graph: &ModelGraph,
    batch: usize,
    mem: &MemoryParams,
    opts: &KarmaOptions,
    runs: usize,
) -> f64 {
    let node = ooc_node(graph, batch, mem);
    // Warm-up outside the timed loop (first-touch pool spawn etc.).
    PlanServer::new(Karma::new(node.clone(), mem.clone()))
        .serve(graph, batch, opts)
        .expect("grid cell plans");
    let samples = (0..runs)
        .map(|_| {
            let server = PlanServer::new(Karma::new(node.clone(), mem.clone()));
            let t = Instant::now();
            let served = server.serve(graph, batch, opts).expect("grid cell plans");
            let ms = t.elapsed().as_secs_f64() * 1e3;
            assert_eq!(served.source, ServeSource::Computed, "fresh server is cold");
            ms
        })
        .collect();
    median(samples)
}

/// Median warm-serve wall ms on `server` (already populated), plus the
/// served entry's block count (the determinism canary).
fn time_warm(
    server: &PlanServer,
    graph: &ModelGraph,
    batch: usize,
    opts: &KarmaOptions,
    runs: usize,
) -> (f64, usize) {
    let mut blocks = 0;
    let samples = (0..runs)
        .map(|_| {
            let t = Instant::now();
            let served = server.serve(graph, batch, opts).expect("warm hit");
            let ms = t.elapsed().as_secs_f64() * 1e3;
            assert_eq!(
                served.source,
                ServeSource::Memory,
                "populated server is warm"
            );
            blocks = served.entry.boundaries.len();
            ms
        })
        .collect();
    (median(samples), blocks)
}

/// Hammer one cold fingerprint from `threads` OS threads: the
/// single-flight contract demands exactly one search and bitwise-equal
/// plans for everyone.
fn single_flight_check(graph: &ModelGraph, batch: usize, mem: &MemoryParams, threads: usize) {
    let node = ooc_node(graph, batch, mem);
    let server = Arc::new(PlanServer::new(Karma::new(node, mem.clone())));
    let opts = KarmaOptions::fast(1);
    let served: Vec<_> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let server = Arc::clone(&server);
                let (graph, opts) = (graph.clone(), opts.clone());
                s.spawn(move || {
                    server
                        .serve(&graph, batch, &opts)
                        .expect("concurrent serve")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let stats = server.stats();
    assert_eq!(
        stats.searches, 1,
        "identical concurrent misses single-flight"
    );
    assert_eq!(stats.memory_hits + 1, threads, "the rest wake to warm hits");
    for s in &served[1..] {
        assert_eq!(
            s.entry.plan, served[0].entry.plan,
            "concurrent plans diverged"
        );
    }
    println!(
        "single-flight: {threads} threads, 1 search, {} coalesced",
        stats.coalesced
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_serve.json")
        .to_string();

    // The fig5 micro grid: every executable micro-zoo mirror × two
    // out-of-core batches (smoke keeps one cell).
    let grid: Vec<(String, ModelGraph, usize)> = {
        let models = [
            ("conv-stack", conv_stack_graph(6, 4)),
            ("mlp-stack", mlp_stack_graph(3, 64, 4)),
            ("resnet-style", resnet_style_graph(4)),
        ];
        let batches: &[usize] = if smoke { &[16] } else { &[8, 16] };
        let cells = if smoke { 1 } else { models.len() };
        models
            .into_iter()
            .take(cells)
            .flat_map(|(name, g)| {
                batches
                    .iter()
                    .map(move |&b| (format!("{name}/b{b}"), g.clone(), b))
            })
            .collect()
    };
    let (cold_runs, warm_runs) = if smoke { (3, 64) } else { (5, 256) };
    let mem = MemoryParams::exact();
    let opts = KarmaOptions::fast(17);
    let threads = rayon::current_num_threads();

    let mut entries = Vec::new();
    let mut speedup = Vec::new();
    for (cell, graph, batch) in &grid {
        let cold_ms = time_cold(graph, *batch, &mem, &opts, cold_runs);

        let node = ooc_node(graph, *batch, &mem);
        let server = PlanServer::new(Karma::new(node, mem.clone()));
        let cold_plan = server
            .serve(graph, *batch, &opts)
            .expect("populate the warm server");
        let (warm_ms, blocks) = time_warm(&server, graph, *batch, &opts, warm_runs);
        assert_eq!(blocks, cold_plan.entry.boundaries.len(), "canary drifted");

        entries.push(BenchEntry {
            model: cell.clone(),
            mode: "baseline".into(),
            wall_ms: cold_ms,
            threads,
            memoize: false, // cache off: the full search runs
            blocks,
            peak_bytes: 0, // serving never executes on the tensor stack
            peak_tier_bytes: vec![],
        });
        entries.push(BenchEntry {
            model: cell.clone(),
            mode: "optimized".into(),
            wall_ms: warm_ms,
            threads,
            memoize: true, // cache on: the in-memory tier answers
            blocks,
            peak_bytes: 0,
            peak_tier_bytes: vec![],
        });

        let s = cold_ms / warm_ms.max(1e-9);
        println!(
            "{cell:<16}: cold {cold_ms:>8.2} ms -> warm {:>9.4} ms ({s:.0}x)",
            warm_ms
        );
        assert!(
            s >= 100.0,
            "{cell}: warm must be >=100x faster than cold (got {s:.0}x)"
        );
        speedup.push(ModelSpeedup {
            model: cell.clone(),
            speedup: s,
        });
    }

    // Concurrency contract on the first grid cell.
    let (_, graph, batch) = &grid[0];
    single_flight_check(graph, *batch, &mem, 4);

    let report = BenchReport {
        config: if smoke { "smoke" } else { "default" }.into(),
        host_threads: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        entries,
        speedup,
    };
    let json = serde_json::to_string(&report).expect("serialize report");
    std::fs::write(&out_path, json + "\n").expect("write report");
    println!("wrote {out_path}");
}

//! Regenerate paper Fig. 6: normalized backward-phase time per layer
//! (back to front) for ResNet-200, out-of-core batch 12 over in-core
//! batch 4, for four methods. Prints an ASCII profile plus spike stats.

use karma_bench::fig6;

fn main() {
    let profiles = fig6::profiles();
    for p in &profiles {
        karma_bench::rule(&format!(
            "Fig. 6 — {} (ResNet-200, OOC batch {} / in-core batch {})",
            p.method,
            fig6::OOC_BATCH,
            fig6::IN_CORE_BATCH
        ));
        // Downsample to ~60 columns of ASCII bars.
        let cols = 60usize.min(p.bars.len().max(1));
        let chunk = p.bars.len().div_ceil(cols).max(1);
        let mut line = String::new();
        for c in p.bars.chunks(chunk) {
            let peak = c.iter().map(|b| b.normalized).fold(0.0, f64::max);
            let ch = match peak {
                x if x < 1.25 => '_',
                x if x < 2.0 => '-',
                x if x < 3.0 => '=',
                x if x < 5.0 => '#',
                _ => '@',
            };
            line.push(ch);
        }
        println!("back {line} front");
        let s = fig6::spike_stats(p);
        println!(
            "spikes(>=2x): {:>3} | max {:>6.1}x | mean {:>5.2}x",
            s.spikes, s.max, s.mean
        );
    }
    println!(
        "\nReading (cf. paper): vDNN++ shows an early large spike (fwd->bwd \
         turnaround) and trailing spikes; SuperNeurons' stalls spread across \
         the layers; KARMA w/ recompute stays flat between a few unavoidable \
         spikes."
    );
}

//! Plan→runtime execution micro-benchmark: times a *real* out-of-core
//! training step driven end to end by the planner — profile the model
//! (`karma-sim::ModelProfile`), plan from the profile
//! (`LayerCostTable::from_profile` → `optimize_blocking` →
//! `refine_recompute` → `build_training_plan`), lower the plan through the
//! bridge (`karma_runtime::bridge::lower_plan`) and execute it on the
//! tensor stack. Records `BENCH_exec.json` in the same shape as
//! `BENCH_planner.json`, so the executor path joins the cross-PR perf
//! trajectory and the CI regression gate.
//!
//! Modes, **measured in the same run**:
//!
//! * `baseline`  — the pre-bridge executor: the plan's block policies with
//!   the hand-written just-in-time transfer schedule (evict after own
//!   forward, fetch before own backward);
//! * `optimized` — the bridged executor: the same policies plus the plan's
//!   exact eviction order and capacity-based prefetch schedule;
//! * `distributed` — the distributed column: the bridged schedule
//!   replicated across two worker threads with the grouped phased
//!   gradient exchange (`AR`/`U` ops appended per the MG-WFBP grouping,
//!   lowered through `lower_dist_plan`, executed by `dp::train`).
//!   Wall time is per global step, so it includes the exchange and the
//!   replication overhead on top of one worker's compute;
//! * `reference` — the don't-distribute-at-all alternative the
//!   `distributed` column is judged against: one replica runs the same
//!   *global* batch (workers × per-worker) on the same device, replanned
//!   for the doubled footprint. The deeper out-of-core pressure (same
//!   near budget, twice the activations) is exactly what sharding the
//!   batch across workers avoids, so `distributed` must beat it
//!   (asserted here best-of-N and gated in `bench_compare`). Emitted
//!   only where the comparison is structural — workloads whose plan uses
//!   the swap lane, so halving the per-replica batch genuinely shallows
//!   the out-of-core schedule. Recompute-only plans (resnet) scale their
//!   offload work linearly with batch whether sharded or not, and the
//!   parameter-dominated mlp panel is exchange-bound (its distributed
//!   win comes from ZeRO's state headroom, asserted by `zero_executed`
//!   below) — on one core, neither side has a structural edge there;
//! * `tiered`    — the bridged schedule with far traffic routed through a
//!   two-tier offload stack (`lower_plan_tiered`: a host tier sized to
//!   half the pooled far peak, an unbounded NVMe tier pricing each
//!   transfer at 4 memory passes), cross-checked per tier against
//!   `expected_residency_tiered`;
//! * `elastic`   — the distributed plan driven by `elastic::ElasticDriver`
//!   through one full churn cycle (a worker dies mid-exchange, the pool
//!   re-lowers, a joiner grows it back and re-lowers again); wall time is
//!   per global step including both hot swaps, pricing recovery on top of
//!   the steady-state distributed column;
//! * `overlap`   — the asynchronous swap engine: the *same* bridged
//!   executor as `optimized` with transfers submitted to two dedicated
//!   I/O lanes instead of priced inline. Emitted only for the
//!   transfer-bound workload (conv-stack), whose far tier carries a
//!   link-occupancy price that both `baseline` and `optimized` pay
//!   synchronously on the compute thread — the overlap column must hide
//!   that wire time under compute and beat `optimized` (asserted here
//!   best-of-N interleaved and hard-gated in `bench_compare`). Lane
//!   count never changes arithmetic, so the loss and the near/far
//!   residency peaks must match the synchronous run exactly;
//! * `zero_executed` — the executed Fig. 8 ZeRO panel (mlp workload
//!   only): the same model replanned with the device budget ZeRO's state
//!   partitioning frees (`zero_effective_capacity`) and run through the
//!   same 2-worker data-parallel path. Its wall time must beat the
//!   `distributed` column — executed KARMA-on-ZeRO vs executed pure-DP
//!   KARMA, measured, not analytic.
//!
//! The run also cross-checks the bridge at runtime: both single-GPU
//! executors must produce bit-identical losses and identical block-level
//! op counts, and the distributed run must ship exactly the message count
//! and bytes `expected_exchange` predicts.
//!
//! Usage: `exec_bench [--smoke] [--out PATH]`.

use std::time::Instant;

use karma_bench::report::{BenchEntry, BenchReport, ModelSpeedup};
use karma_core::capacity::{build_training_plan, CapacityPlanOptions};
use karma_core::cost::LayerCostTable;
use karma_core::opt::{optimize_blocking, refine_recompute, OptConfig};
use karma_dist::{append_exchange_ops, zero_effective_capacity};
use karma_graph::{MemoryParams, ModelGraph};
use karma_hw::{ClusterSpec, GpuSpec, LinkSpec, NodeSpec};
use karma_net::{AllReduceAlgo, AllReduceModel, PhasedExchange};
use karma_runtime::bridge::{
    block_grad_bytes, expected_exchange, expected_residency, expected_residency_tiered,
    graph_boundaries_to_net, lower_dist_plan, lower_plan, lower_plan_tiered,
};
use karma_runtime::dp::train;
use karma_runtime::elastic::{ElasticDriver, ElasticOptions, PoolEvent};
use karma_runtime::{OocExecutor, TierSpec, TierStack};
use karma_sim::ModelProfile;
use karma_tensor::{
    conv_stack, mlp_stack, small_resnet_style, Sequential, SyntheticDataset, Tensor,
};

/// Median wall-clock milliseconds of `runs` gradient steps (one warm-up).
fn time_steps(
    exec: &OocExecutor,
    net: &Sequential,
    x: &Tensor,
    y: &[usize],
    runs: usize,
) -> (f64, f32) {
    let (mut loss, _, _) = exec.grad_step(net, x, y, |_, _| {});
    let mut samples = Vec::with_capacity(runs);
    for _ in 0..runs {
        let t = Instant::now();
        let (l, _, _) = exec.grad_step(net, x, y, |_, _| {});
        samples.push(t.elapsed().as_secs_f64() * 1e3);
        loss = l;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    (samples[samples.len() / 2], loss)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_exec.json")
        .to_string();
    // Both workloads are millisecond-scale, so smoke mode keeps them and
    // trims repetitions: between them the two plans exercise both
    // transfer lanes.
    let runs = if smoke { 3 } else { 9 };
    // Each graph is the zoo's mirror of its executable net (see
    // `karma_zoo::micro`); the constructor is kept so the distributed
    // column can mint identical replicas. The last tuple fields are the
    // batch size, the swap-link bandwidth the planner prices transfers
    // at, and the executed link-occupancy price (ns/KiB) of the far
    // tier — nonzero marks the workload transfer-bound and turns on the
    // `overlap` column.
    type Workload = (ModelGraph, fn() -> Sequential, u64, usize, f64, u64);
    let workloads: Vec<Workload> = vec![
        // The conv stack is the transfer-bound panel: its plan leans on
        // the swap lane, and the executed link price makes the wire time
        // a first-order cost the synchronous engine pays inline — the
        // overlap column exists to hide exactly that.
        (
            karma_zoo::micro::conv_stack_graph(6, 4),
            || conv_stack(6, 4, 11),
            21,
            16,
            4.0e9,
            20_000,
        ),
        (
            karma_zoo::micro::resnet_style_graph(4),
            || small_resnet_style(4, 7),
            71,
            16,
            4.0e9,
            0,
        ),
        // Parameter-dominated, batched large, and planned over a thin
        // interconnect, so the base plan leans on recompute — exactly
        // the work the ZeRO headroom deletes in the executed Fig. 8
        // comparison.
        (
            karma_zoo::micro::mlp_stack_graph(8, 256, 4),
            || mlp_stack(8, 256, 4, 31),
            91,
            64,
            1.0e7,
            0,
        ),
    ];

    let mut entries = Vec::new();
    let mut speedup = Vec::new();
    for (graph, make_net, seed, batch, link_bw, link_ns) in workloads {
        let net = make_net();
        let data = SyntheticDataset::classification(2 * batch, 1, 16, 4, seed);
        let (x, y) = data.batch(0, batch);

        // Steps 1-2: offline profile; a device sized so the model is
        // out-of-core and the planner must swap.
        let mem = MemoryParams::exact();
        let need = graph.peak_footprint(batch, &mem) as f64;
        // The conv workloads price the link fast enough that
        // capacity-based swapping competes with recompute, so their
        // plans exercise both transfer lanes; the mlp workload's thin
        // link pushes its plan toward recompute instead.
        let node = NodeSpec::toy(
            GpuSpec::toy((need * 0.65) as u64, 5.0e9),
            LinkSpec::toy(link_bw),
        );
        let profile = ModelProfile::collect(&graph, batch, &node.gpu, &mem);
        let table = LayerCostTable::from_profile(&profile, &node);

        // Steps 3-5: plan from the profile. Cuts at graph layer 1 are
        // excluded — they would isolate the input layer, which the
        // executor cannot realize.
        let mut cfg = OptConfig::fast(17);
        cfg.min_cut_layer = 2;
        cfg.max_cut_candidates = 5;
        let bounds = optimize_blocking(&table, &cfg);
        let costs = table.block_costs(&bounds);
        let rc = refine_recompute(&costs);
        let cp = build_training_plan(&costs, &CapacityPlanOptions::karma_with_recompute(rc));

        // Bridge: graph-space boundaries -> net-space executor.
        let net_bounds = graph_boundaries_to_net(&bounds)
            .expect("planner isolated the input layer; pick another seed");
        let key_bytes: Vec<usize> = net.forward_all(&x).iter().map(Tensor::bytes).collect();
        let replay = expected_residency(&cp.plan, &net_bounds, &key_bytes, net.len())
            .expect("planner plan must be bridgeable");
        let budget = replay.peak_bytes;
        let bridged =
            lower_plan(&cp.plan, &net_bounds, budget, net.len()).expect("planner plan must lower");
        // The pre-bridge baseline keeps every boundary resident, so it
        // cannot run inside the plan's modeled peak — give it headroom
        // and record the peak it actually needs.
        let jit = OocExecutor::new(
            net_bounds.clone(),
            bridged.policies().to_vec(),
            usize::MAX / 2,
            net.len(),
        );
        // Transfer-bound workload: price the far tier's link so every
        // swap holds the wire for real wall time. Both synchronous
        // executors pay it inline on the compute thread; the overlap
        // column below pays the identical price on its I/O lanes.
        let (bridged, jit) = if link_ns > 0 {
            let nb = bridged.n_blocks();
            let linked = vec![TierSpec::unbounded().with_link(link_ns)];
            (
                bridged.with_tiers(linked.clone(), vec![0; nb]),
                jit.with_tiers(linked, vec![0; nb]),
            )
        } else {
            (bridged, jit)
        };

        let (base_ms, base_loss) = time_steps(&jit, &net, &x, &y, runs);
        let (mut opt_ms, opt_loss) = time_steps(&bridged, &net, &x, &y, runs);

        // Runtime cross-check: the bridge moves transfers, not arithmetic.
        assert_eq!(base_loss, opt_loss, "{}: loss diverged", graph.name);
        let (_, _, s_jit) = jit.grad_step(&net, &x, &y, |_, _| {});
        let (_, _, s_br) = bridged.grad_step(&net, &x, &y, |_, _| {});
        assert_eq!(s_jit.swap_out_ops, s_br.swap_out_ops);
        assert_eq!(s_jit.swap_in_ops, s_br.swap_in_ops);
        assert_eq!(s_jit.recompute_ops, s_br.recompute_ops);
        // Zero model-vs-execution gap: the bridged run peaks at exactly
        // the bytes the residency replay predicted (which sized its
        // budget, so the check is also enforced by the allocator), and
        // boundary eviction strictly undercuts the same schedule with
        // boundaries pinned resident.
        assert_eq!(
            s_br.peak_near_bytes, replay.peak_bytes,
            "{}: executed peak != modeled peak",
            graph.name
        );
        if bridged.boundary_evict().iter().any(|e| *e) {
            let pinned = OocExecutor::new(
                net_bounds.clone(),
                bridged.policies().to_vec(),
                usize::MAX / 2,
                net.len(),
            )
            .with_schedule(
                bridged.evict_after().to_vec(),
                bridged.prefetch_before().to_vec(),
            );
            let (_, _, s_pin) = pinned.grad_step(&net, &x, &y, |_, _| {});
            assert!(
                s_br.peak_near_bytes < s_pin.peak_near_bytes,
                "{}: boundary eviction did not shrink the peak",
                graph.name
            );
        }

        // Overlap column: the same bridged schedule on the asynchronous
        // swap engine — two dedicated I/O lanes carry the priced
        // transfers while the compute thread runs ahead to each
        // deadline. The engine contract (lanes move wall clock, never
        // arithmetic or residency) is asserted before timing; then the
        // two engines are timed interleaved and compared best-of-N,
        // where the structural difference (the hidden wire time)
        // survives scheduler noise.
        let mut overlap_col = None;
        if link_ns > 0 {
            assert!(
                s_br.swap_in_ops > 0,
                "{}: the transfer-bound workload stopped swapping — overlap has nothing to hide",
                graph.name
            );
            let overlap = bridged.clone().with_io_lanes(2);
            let (ov_loss, _, s_ov) = overlap.grad_step(&net, &x, &y, |_, _| {});
            assert_eq!(
                opt_loss, ov_loss,
                "{}: I/O lanes moved arithmetic",
                graph.name
            );
            assert_eq!(
                s_ov.peak_near_bytes, replay.peak_bytes,
                "{}: I/O lanes moved the near peak",
                graph.name
            );
            assert_eq!(
                s_ov.peak_tier_bytes, s_br.peak_tier_bytes,
                "{}: in-flight accounting moved the far peak",
                graph.name
            );
            assert!(
                s_ov.swap_hidden_s > 0.0,
                "{}: the lanes hid no transfer time",
                graph.name
            );
            let mut opt_samples = Vec::with_capacity(runs);
            let mut ov_samples = Vec::with_capacity(runs);
            for _ in 0..runs {
                let t = Instant::now();
                bridged.grad_step(&net, &x, &y, |_, _| {});
                opt_samples.push(t.elapsed().as_secs_f64() * 1e3);
                let t = Instant::now();
                overlap.grad_step(&net, &x, &y, |_, _| {});
                ov_samples.push(t.elapsed().as_secs_f64() * 1e3);
            }
            opt_samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
            ov_samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
            assert!(
                ov_samples[0] < opt_samples[0],
                "{}: overlap ({:.3} ms/step) must beat the synchronous optimized engine \
                 ({:.3} ms/step, best of {runs})",
                graph.name,
                ov_samples[0],
                opt_samples[0]
            );
            // Report the interleaved medians for both columns so the
            // bench_compare hard gate compares like-for-like samples.
            opt_ms = opt_samples[opt_samples.len() / 2];
            overlap_col = Some((ov_samples[ov_samples.len() / 2], s_ov));
        }

        // Distributed column: append the MG-WFBP-grouped AR/U ops over
        // real per-block gradient sizes, lower through the distributed
        // bridge, and time full data-parallel steps (2 worker replicas
        // at the same per-worker batch, grouped phased exchange).
        let workers = 2usize;
        let grad_bytes = block_grad_bytes(&net, &net_bounds);
        let model = AllReduceModel::new(AllReduceAlgo::Hierarchical, &ClusterSpec::abci(2));
        let phased = PhasedExchange::plan(&grad_bytes, &model);
        let mut dist_plan = cp.plan.clone();
        append_exchange_ops(&mut dist_plan, &phased);
        let (dist_exec, xchg) = lower_dist_plan(&dist_plan, &net_bounds, budget, net.len())
            .expect("distributed plan must lower");
        let dp_data =
            SyntheticDataset::classification(workers * batch, 1, 16, 4, seed.wrapping_add(1));
        let mut nets: Vec<Sequential> = (0..workers).map(|_| make_net()).collect();
        let exchange = expected_exchange(&dist_plan, &grad_bytes, workers, 1)
            .expect("distributed plan must replay");
        // Warm-up step doubles as the traffic + residency cross-check:
        // every replica runs the single-worker trajectory.
        let report = train(&mut nets, &dist_exec, &xchg, &dp_data, batch, 0.05, 1);
        assert_eq!(report.exchange_messages, exchange.messages);
        assert_eq!(report.exchanged_bytes as u64, exchange.total_bytes);
        assert_eq!(
            report.peak_near_bytes, replay.peak_bytes,
            "{}: per-worker peak != modeled peak",
            graph.name
        );
        // Reference column: the sequential alternative — one replica
        // runs the same global batch on the same device. Replan for the
        // doubled footprint (the near budget does not grow, so the plan
        // offloads far more per sample) and time full steps (gradient +
        // update, matching what the distributed step does). Skipped when
        // the plan never swaps — the comparison is only structural for
        // transfer-bound plans (see the mode list above).
        let mut dist_samples = Vec::with_capacity(runs);
        let mut ref_col = None;
        if s_br.swap_in_ops > 0 {
            let (x_g, y_g) = dp_data.batch(0, workers * batch);
            let profile_r = ModelProfile::collect(&graph, workers * batch, &node.gpu, &mem);
            let table_r = LayerCostTable::from_profile(&profile_r, &node);
            let bounds_r = optimize_blocking(&table_r, &cfg);
            let costs_r = table_r.block_costs(&bounds_r);
            let rc_r = refine_recompute(&costs_r);
            let cp_r =
                build_training_plan(&costs_r, &CapacityPlanOptions::karma_with_recompute(rc_r));
            let nb_r =
                graph_boundaries_to_net(&bounds_r).expect("reference plan isolated the input");
            let key_bytes_r: Vec<usize> = net.forward_all(&x_g).iter().map(Tensor::bytes).collect();
            let replay_r = expected_residency(&cp_r.plan, &nb_r, &key_bytes_r, net.len())
                .expect("reference plan must be bridgeable");
            let exec_ref = lower_plan(&cp_r.plan, &nb_r, replay_r.peak_bytes, net.len())
                .expect("reference plan must lower");
            let mut ref_net = make_net();
            // Warm-up doubles as the stats probe.
            let (_, g0, s_ref) = exec_ref.grad_step(&ref_net, &x_g, &y_g, |_, _| {});
            ref_net.apply(&g0, 0.05);
            // Time the two alternatives interleaved and compare
            // best-of-N: the minimum is the statistic least distorted by
            // scheduler noise, so the structural difference (the
            // reference's extra offload work per global step) survives.
            let mut ref_samples = Vec::with_capacity(runs);
            for _ in 0..runs {
                let t = Instant::now();
                train(&mut nets, &dist_exec, &xchg, &dp_data, batch, 0.05, 1);
                dist_samples.push(t.elapsed().as_secs_f64() * 1e3);
                let t = Instant::now();
                let (_, g, _) = exec_ref.grad_step(&ref_net, &x_g, &y_g, |_, _| {});
                ref_net.apply(&g, 0.05);
                ref_samples.push(t.elapsed().as_secs_f64() * 1e3);
            }
            ref_samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
            dist_samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
            assert!(
                dist_samples[0] < ref_samples[0],
                "{}: distributed ({:.3} ms/step) must beat the sequential global-batch \
                 reference ({:.3} ms/step, best of {runs})",
                graph.name,
                dist_samples[0],
                ref_samples[0]
            );
            ref_col = Some((
                ref_samples[ref_samples.len() / 2],
                cp_r.plan.n_blocks,
                s_ref.peak_near_bytes,
            ));
        } else {
            for _ in 0..runs {
                let t = Instant::now();
                train(&mut nets, &dist_exec, &xchg, &dp_data, batch, 0.05, 1);
                dist_samples.push(t.elapsed().as_secs_f64() * 1e3);
            }
            dist_samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        }
        let dist_ms = dist_samples[dist_samples.len() / 2];

        // Tiered column: the same bridged schedule with far traffic
        // routed through a two-tier offload stack — a host tier sized to
        // half the pooled far peak, so roughly half the parked bytes
        // spill into the priced NVMe tier below it. The executed per-tier
        // peaks must match `expected_residency_tiered` exactly, and
        // routing must leave the near side and the arithmetic untouched.
        let parked = replay.peak_tier_bytes[0];
        let tiers = vec![TierSpec::host(parked / 2), TierSpec::nvme(usize::MAX)];
        let tiered =
            lower_plan_tiered(&cp.plan, &net_bounds, budget, net.len(), &key_bytes, &tiers)
                .expect("an unbounded last tier keeps the stack feasible");
        let treplay = expected_residency_tiered(
            &cp.plan,
            &net_bounds,
            &key_bytes,
            net.len(),
            tiered.tier_of(),
            tiers.len(),
        )
        .expect("tiered plan must replay");
        let (tier_ms, tier_loss) = time_steps(&tiered, &net, &x, &y, runs);
        assert_eq!(
            opt_loss, tier_loss,
            "{}: tier routing changed arithmetic",
            graph.name
        );
        let (_, _, s_tier) = tiered.grad_step(&net, &x, &y, |_, _| {});
        assert_eq!(
            s_tier.peak_tier_bytes, treplay.peak_tier_bytes,
            "{}: executed per-tier peaks != modeled per-tier peaks",
            graph.name
        );
        assert_eq!(
            s_tier.peak_near_bytes, replay.peak_bytes,
            "{}: tier routing moved the near peak",
            graph.name
        );

        // Elastic column: the same distributed plan driven through one
        // full churn cycle — a worker dies mid-exchange, the pool is
        // re-lowered, and a joiner grows it back (re-lowered again). Wall
        // time is per global step *including* the two hot swaps, so the
        // column prices what recovery costs on top of the steady-state
        // distributed path. The per-worker peak contract must survive
        // both swaps.
        let churn_steps = 4usize;
        let churn_data =
            SyntheticDataset::classification(8 * batch, 1, 16, 4, seed.wrapping_add(2));
        let driver =
            ElasticDriver::from_plan(dist_plan.clone(), net_bounds.clone(), budget, net.len());
        let mut churn_opts = ElasticOptions::plain(batch, 0.05, churn_steps);
        churn_opts.events = vec![
            PoolEvent::Fail {
                step: 1,
                rank: 1,
                groups_shipped: 1,
            },
            PoolEvent::Join {
                step: 3,
                joiners: 1,
            },
        ];
        let mut churn_nets: Vec<Sequential> = (0..workers).map(|_| make_net()).collect();
        let mut churn_store = TierStack::new(&[TierSpec::unbounded()]);
        // Warm-up cycle doubles as the contract cross-check. The pool
        // returns to its starting width, so timed cycles reuse the nets.
        let churn_report = driver
            .run(
                &mut churn_nets,
                Some(&make_net),
                &churn_data,
                &churn_opts,
                &mut churn_store,
                None,
            )
            .expect("churn cycle must run");
        assert_eq!(churn_report.relowers, 2, "{}: shrink + regrow", graph.name);
        assert_eq!(
            churn_report.peak_near_bytes, replay.peak_bytes,
            "{}: churn moved the per-worker peak",
            graph.name
        );
        let mut churn_samples = Vec::with_capacity(runs);
        for _ in 0..runs {
            let t = Instant::now();
            driver
                .run(
                    &mut churn_nets,
                    Some(&make_net),
                    &churn_data,
                    &churn_opts,
                    &mut churn_store,
                    None,
                )
                .expect("churn cycle must run");
            churn_samples.push(t.elapsed().as_secs_f64() * 1e3 / churn_steps as f64);
        }
        churn_samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let elastic_ms = churn_samples[churn_samples.len() / 2];

        let blocks = cp.plan.n_blocks;
        for (mode, wall_ms, peak_bytes, peak_tier_bytes) in [
            ("baseline", base_ms, s_jit.peak_near_bytes, vec![]),
            ("optimized", opt_ms, s_br.peak_near_bytes, vec![]),
            ("distributed", dist_ms, report.peak_near_bytes, vec![]),
            (
                "tiered",
                tier_ms,
                s_tier.peak_near_bytes,
                s_tier.peak_tier_bytes.clone(),
            ),
            ("elastic", elastic_ms, churn_report.peak_near_bytes, vec![]),
        ] {
            entries.push(BenchEntry {
                model: graph.name.clone(),
                mode: mode.into(),
                wall_ms,
                threads: 1,
                memoize: false,
                blocks,
                peak_bytes,
                peak_tier_bytes,
            });
        }
        if let Some((ref_ms, ref_blocks, ref_peak)) = ref_col {
            entries.push(BenchEntry {
                model: graph.name.clone(),
                mode: "reference".into(),
                wall_ms: ref_ms,
                threads: 1,
                memoize: false,
                blocks: ref_blocks,
                peak_bytes: ref_peak,
                peak_tier_bytes: vec![],
            });
        }
        if let Some((ov_ms, ref s_ov)) = overlap_col {
            println!(
                "{:<14} overlap: {:>7.3} ms/step vs sync optimized {:>7.3} ms/step ({:.2}x win); \
                 waited {:.3} ms, hidden {:.3} ms of transfer time per step",
                graph.name,
                ov_ms,
                opt_ms,
                opt_ms / ov_ms.max(1e-9),
                s_ov.swap_wait_s * 1e3,
                s_ov.swap_hidden_s * 1e3,
            );
            entries.push(BenchEntry {
                model: graph.name.clone(),
                mode: "overlap".into(),
                wall_ms: ov_ms,
                threads: 1,
                memoize: false,
                blocks,
                peak_bytes: s_ov.peak_near_bytes,
                peak_tier_bytes: s_ov.peak_tier_bytes.clone(),
            });
        }

        // Executed Fig. 8 comparison (ZeRO panel): replan the mlp
        // workload with the device budget ZeRO's state partitioning
        // frees across the 2 ranks, and run both plans through the same
        // data-parallel path. The headroom must delete offload work and
        // the measured step time must beat the pure-DP column.
        if graph.name == "mlp-stack" {
            let state_bytes = graph.total_params() * 12; // fp32 weights + grads + momentum
            let zero_cap = zero_effective_capacity((need * 0.65) as u64, state_bytes, workers);
            let node_z = NodeSpec::toy(GpuSpec::toy(zero_cap, 5.0e9), LinkSpec::toy(link_bw));
            let profile_z = ModelProfile::collect(&graph, batch, &node_z.gpu, &mem);
            let table_z = LayerCostTable::from_profile(&profile_z, &node_z);
            let bounds_z = optimize_blocking(&table_z, &cfg);
            let costs_z = table_z.block_costs(&bounds_z);
            let rc_z = refine_recompute(&costs_z);
            let cp_z =
                build_training_plan(&costs_z, &CapacityPlanOptions::karma_with_recompute(rc_z));
            let nb_z = graph_boundaries_to_net(&bounds_z).expect("zero plan isolated the input");
            let replay_z = expected_residency(&cp_z.plan, &nb_z, &key_bytes, net.len())
                .expect("zero plan must be bridgeable");
            let gb_z = block_grad_bytes(&net, &nb_z);
            let phased_z = PhasedExchange::plan(&gb_z, &model);
            let mut plan_z = cp_z.plan.clone();
            append_exchange_ops(&mut plan_z, &phased_z);
            let (exec_z, xchg_z) = lower_dist_plan(&plan_z, &nb_z, replay_z.peak_bytes, net.len())
                .expect("zero plan must lower");
            let mut nets_z: Vec<Sequential> = (0..workers).map(|_| make_net()).collect();
            let report_z = train(&mut nets_z, &exec_z, &xchg_z, &dp_data, batch, 0.05, 1);
            assert_eq!(
                report_z.peak_near_bytes, replay_z.peak_bytes,
                "zero: per-worker peak != modeled peak"
            );
            assert!(
                report_z.swapped_bytes <= report.swapped_bytes
                    && report_z.recomputed_layers <= report.recomputed_layers
                    && report_z.swapped_bytes + report_z.recomputed_layers
                        < report.swapped_bytes + report.recomputed_layers,
                "zero headroom did not reduce offload work (swapped {} -> {} B, recomputed {} -> \
                 {} layers)",
                report.swapped_bytes,
                report_z.swapped_bytes,
                report.recomputed_layers,
                report_z.recomputed_layers
            );
            // Time the two plans interleaved and compare best-of-N: the
            // data-parallel path pays a scheduler-noise-prone thread and
            // exchange constant, and the minimum is the statistic least
            // distorted by that noise — the structural difference (the
            // deleted recompute work) survives in it.
            let mut zero_samples = Vec::with_capacity(runs);
            let mut dp_samples = Vec::with_capacity(runs);
            for _ in 0..runs {
                let t = Instant::now();
                train(&mut nets_z, &exec_z, &xchg_z, &dp_data, batch, 0.05, 1);
                zero_samples.push(t.elapsed().as_secs_f64() * 1e3);
                let t = Instant::now();
                train(&mut nets, &dist_exec, &xchg, &dp_data, batch, 0.05, 1);
                dp_samples.push(t.elapsed().as_secs_f64() * 1e3);
            }
            zero_samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
            dp_samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let zero_ms = zero_samples[zero_samples.len() / 2];
            let (zero_best, dp_best) = (zero_samples[0], dp_samples[0]);
            assert!(
                zero_best < dp_best,
                "executed KARMA-on-ZeRO ({zero_best:.3} ms/step) must beat executed pure-DP \
                 KARMA ({dp_best:.3} ms/step)"
            );
            println!(
                "{:<14} zero x{}: {:>7.3} ms/step vs pure-DP {:>7.3} ms/step ({:.2}x win, \
                 best of {}); recompute {} -> {} layers, swapped {} -> {} B (capacity {} -> {} B)",
                graph.name,
                workers,
                zero_best,
                dp_best,
                dp_best / zero_best.max(1e-9),
                runs,
                report.recomputed_layers,
                report_z.recomputed_layers,
                report.swapped_bytes,
                report_z.swapped_bytes,
                (need * 0.65) as u64,
                zero_cap
            );
            entries.push(BenchEntry {
                model: graph.name.clone(),
                mode: "zero_executed".into(),
                wall_ms: zero_ms,
                threads: 1,
                memoize: false,
                blocks: cp_z.plan.n_blocks,
                peak_bytes: report_z.peak_near_bytes,
                peak_tier_bytes: report_z.peak_tier_bytes.clone(),
            });
        }
        let s = base_ms / opt_ms.max(1e-9);
        println!(
            "{:<14} batch {:>3}, {} blocks, {} swaps, {} recomputes: \
             jit {:>7.3} ms -> bridged {:>7.3} ms ({:.2}x); \
             peak {} B -> {} B ({} boundary evictions); \
             dp x{} {:>7.3} ms/step vs seq global-batch {:>7.3} ms/step, {} msgs ({} groups); \
             tiered {:>7.3} ms, far peaks {:?} B; elastic {:>7.3} ms/step",
            graph.name,
            batch,
            blocks,
            s_br.swap_in_ops,
            s_br.recompute_ops,
            base_ms,
            opt_ms,
            s,
            s_jit.peak_near_bytes,
            s_br.peak_near_bytes,
            s_br.boundary_out_ops,
            workers,
            dist_ms,
            ref_col.map_or(f64::NAN, |c| c.0),
            report.exchange_messages,
            xchg.n_groups(),
            tier_ms,
            s_tier.peak_tier_bytes,
            elastic_ms
        );
        speedup.push(ModelSpeedup {
            model: graph.name.clone(),
            speedup: s,
        });
    }

    let report = BenchReport {
        config: if smoke { "smoke" } else { "default" }.into(),
        host_threads: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        entries,
        speedup,
    };
    let json = serde_json::to_string(&report).expect("serialize report");
    std::fs::write(&out_path, json + "\n").expect("write report");
    println!("wrote {out_path}");
}

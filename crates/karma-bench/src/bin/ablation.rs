//! Ablation studies (DESIGN.md X1/X2): strategy components and solver
//! quality.

use karma_bench::ablation;
use karma_graph::MemoryParams;
use karma_zoo::{resnet, CAL_RESNET50};

fn main() {
    karma_bench::rule("X1 — strategy ablation (iteration makespan, s)");
    println!(
        "{:<12} {:>6} {:>12} {:>14} {:>12} {:>12}",
        "model", "batch", "eager(vDNN)", "cap, no pf", "capacity", "+recompute"
    );
    for model in ["ResNet-200", "VGG16", "WRN-28-10"] {
        let a = ablation::strategy_ablation(model);
        println!(
            "{:<12} {:>6} {:>12.3} {:>14.3} {:>12.3} {:>12.3}",
            a.model,
            a.batch,
            a.eager_makespan,
            a.capacity_no_prefetch,
            a.capacity_prefetch,
            a.with_recompute
        );
    }

    karma_bench::rule("X2 — solver ablation (ACO vs best uniform blocking)");
    println!(
        "{:<12} {:>6} {:>12} {:>14} {:>8}",
        "model", "batch", "ACO (s)", "best unif (s)", "blocks"
    );
    for (g, batch) in [(resnet::resnet50(), 256usize), (resnet::resnet200(), 12)] {
        let mem = MemoryParams::calibrated(CAL_RESNET50);
        let x = ablation::solver_ablation(&g, batch, &mem);
        println!(
            "{:<12} {:>6} {:>12.3} {:>14.3} {:>8}",
            x.model, x.batch, x.aco_makespan, x.best_uniform_makespan, x.aco_blocks
        );
    }
}

//! Regenerate paper Fig. 8: parity-GPU scaling for Megatron-LM 2.5B/8.3B
//! (hybrid vs hybrid+phased vs DP KARMA) and Turing-NLG 17B (ZeRO vs
//! KARMA vs ZeRO+KARMA). Values are hours per OpenWebText epoch.

use karma_bench::fig8;

fn print_series(points: &[fig8::Fig8Point]) {
    let methods: Vec<&str> = {
        let mut seen = Vec::new();
        for p in points {
            if !seen.contains(&p.method.as_str()) {
                seen.push(p.method.as_str());
            }
        }
        seen
    };
    let mut gpus: Vec<usize> = points.iter().map(|p| p.gpus).collect();
    gpus.sort_unstable();
    gpus.dedup();
    print!("{:>6}", "GPUs");
    for m in &methods {
        print!(" {:>26}", m);
    }
    println!();
    for g in gpus {
        print!("{g:>6}");
        for m in &methods {
            let v = points
                .iter()
                .find(|p| p.gpus == g && p.method == *m)
                .map(|p| p.hours_per_epoch);
            match v {
                Some(v) => print!(" {v:>26.1}"),
                None => print!(" {:>26}", "-"),
            }
        }
        println!();
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (cfg25, cfg83) = fig8::figure_configs();
    let gpus_25: &[usize] = if quick {
        &[128, 2048]
    } else {
        &[128, 256, 512, 1024, 2048]
    };
    let gpus_83: &[usize] = if quick {
        &[512, 2048]
    } else {
        &[512, 1024, 2048]
    };

    karma_bench::rule("Fig. 8 — Megatron-LM 2.5B (hours/epoch)");
    print_series(&fig8::megatron_series(&cfg25, gpus_25));

    karma_bench::rule("Fig. 8 — Megatron-LM 8.3B (hours/epoch)");
    print_series(&fig8::megatron_series(&cfg83, gpus_83));

    karma_bench::rule("Fig. 8 — Turing-NLG 17B (hours/epoch)");
    print_series(&fig8::turing_series(gpus_83));

    println!(
        "\nReading (cf. paper): the hybrid's communication grows with scale; \
         at 2,048 GPUs pure data-parallel KARMA overtakes it. For Turing-NLG, \
         ZeRO beats KARMA alone, and ZeRO+KARMA beats ZeRO (paper: 1.35x)."
    );
}

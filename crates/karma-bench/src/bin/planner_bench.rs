//! Planner-search micro-benchmark: times `optimize_blocking` end to end
//! (candidate generation, ACO search, per-candidate plan construction +
//! simulation) on two zoo models and records the numbers in
//! `BENCH_planner.json` — the perf trajectory anchor for the planner
//! across PRs.
//!
//! Each model gets two entries **measured in the same run**:
//!
//! * `baseline`  — evaluation memoization off, 1 worker thread: the
//!   pre-parallel, pre-cache search cost;
//! * `optimized` — memoization on, all worker threads.
//!
//! The report also cross-checks the determinism guarantee at runtime: both
//! modes must return identical block boundaries.
//!
//! Usage: `planner_bench [--smoke] [--out PATH]` — `--smoke` runs one
//! model with the tiny test config (used by CI to exercise the parallel
//! path), `--out` overrides the JSON path.

use std::time::Instant;

use karma_bench::report::{BenchEntry, BenchReport, ModelSpeedup};
use karma_core::cost::LayerCostTable;
use karma_core::opt::{optimize_blocking, OptConfig};
use karma_hw::NodeSpec;
use karma_zoo::fig5_workloads;

/// Median wall-clock milliseconds of `runs` timed calls (after one warm-up
/// call), plus the boundaries of the last call.
fn time_optimize(table: &LayerCostTable, cfg: &OptConfig, runs: usize) -> (f64, Vec<usize>) {
    let mut bounds = optimize_blocking(table, cfg); // warm-up
    let mut samples = Vec::with_capacity(runs);
    for _ in 0..runs {
        let t = Instant::now();
        bounds = optimize_blocking(table, cfg);
        samples.push(t.elapsed().as_secs_f64() * 1e3);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    (samples[samples.len() / 2], bounds)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_planner.json")
        .to_string();

    let models: &[&str] = if smoke {
        &["ResNet-50"]
    } else {
        &["ResNet-50", "VGG16"]
    };
    let runs = if smoke { 1 } else { 3 };
    let node = NodeSpec::abci();

    let mut entries = Vec::new();
    let mut speedup = Vec::new();
    for w in fig5_workloads() {
        if !models.contains(&w.model.name.as_str()) {
            continue;
        }
        // Mid out-of-core batch, as the ablation harness uses.
        let batch = w.batch_sizes[w.batch_sizes.len() / 2];
        let table = LayerCostTable::from_graph(&w.model, batch, &node, &w.mem);
        let cfg = if smoke {
            OptConfig::fast(17)
        } else {
            OptConfig::default()
        };

        // Baseline: the pre-parallel search — one worker, no memoization.
        let mut baseline_cfg = cfg.clone();
        baseline_cfg.memoize = false;
        rayon::set_num_threads(1);
        let (base_ms, base_bounds) = time_optimize(&table, &baseline_cfg, runs);
        entries.push(BenchEntry {
            model: w.model.name.clone(),
            mode: "baseline".into(),
            wall_ms: base_ms,
            threads: 1,
            memoize: false,
            blocks: base_bounds.len(),
            peak_bytes: 0, // planner benches never execute
            peak_tier_bytes: vec![],
        });

        // Optimized: memoized evaluations on every available worker.
        rayon::set_num_threads(0);
        let threads = rayon::current_num_threads();
        let (opt_ms, opt_bounds) = time_optimize(&table, &cfg, runs);
        entries.push(BenchEntry {
            model: w.model.name.clone(),
            mode: "optimized".into(),
            wall_ms: opt_ms,
            threads,
            memoize: true,
            blocks: opt_bounds.len(),
            peak_bytes: 0, // planner benches never execute
            peak_tier_bytes: vec![],
        });

        // The determinism guarantee, checked on real planner inputs: thread
        // count and memoization must not change the result.
        assert_eq!(
            base_bounds, opt_bounds,
            "{}: baseline and optimized boundaries diverged",
            w.model.name
        );

        let s = base_ms / opt_ms.max(1e-9);
        println!(
            "{:<12} batch {:>4}: baseline {:>9.1} ms -> optimized {:>9.1} ms ({:.2}x, {} threads)",
            w.model.name, batch, base_ms, opt_ms, s, threads
        );
        speedup.push(ModelSpeedup {
            model: w.model.name.clone(),
            speedup: s,
        });
    }

    let report = BenchReport {
        config: if smoke { "smoke" } else { "default" }.into(),
        host_threads: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        entries,
        speedup,
    };
    let json = serde_json::to_string(&report).expect("serialize report");
    std::fs::write(&out_path, json + "\n").expect("write report");
    println!("wrote {out_path}");
}

//! Regenerate paper Fig. 5: samples/s vs batch for six models × six
//! methods on a V100 16 GiB. `--quick` limits batches; `--model NAME`
//! filters.

use karma_bench::fig5;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let model_filter: Option<Vec<&str>> = args
        .iter()
        .position(|a| a == "--model")
        .and_then(|i| args.get(i + 1))
        .map(|m| vec![m.as_str()]);

    let points = fig5::run(model_filter.as_deref(), quick);

    let models: Vec<&str> = {
        let mut seen = Vec::new();
        for p in &points {
            if !seen.contains(&p.model.as_str()) {
                seen.push(p.model.as_str());
            }
        }
        seen
    };
    for model in models {
        karma_bench::rule(&format!("Fig. 5 — {model} (samples/s)"));
        print!("{:>7}", "batch");
        for m in fig5::METHODS {
            print!(" {:>13}", &m[..m.len().min(13)]);
        }
        println!();
        let mut batches: Vec<usize> = points
            .iter()
            .filter(|p| p.model == model)
            .map(|p| p.batch)
            .collect();
        batches.sort_unstable();
        batches.dedup();
        for b in batches {
            print!("{b:>7}");
            for m in fig5::METHODS {
                let v = points
                    .iter()
                    .find(|p| p.model == model && p.batch == b && p.method == m)
                    .and_then(|p| p.samples_per_sec);
                match v {
                    Some(v) => print!(" {v:>13.1}"),
                    None => print!(" {:>13}", "OOM"),
                }
            }
            println!();
        }
    }

    let s = fig5::summarize(&points);
    karma_bench::rule("Fig. 5 — headline summary");
    println!(
        "KARMA (w/ recompute) vs best prior out-of-core method: {:.2}x geometric mean \
         (paper: 1.52x avg over SOTA OOC)",
        s.mean_speedup_over_best_ooc
    );
    println!(
        "KARMA (w/ recompute) vs Checkmate (recompute SOTA): {:.2}x geometric mean",
        s.mean_speedup_over_checkmate
    );
    println!(
        "degradation vs in-core at the largest batch: {:.0}%..{:.0}% (paper: 9%..37%)",
        s.degradation_range.0 * 100.0,
        s.degradation_range.1 * 100.0
    );
}

//! Regenerate paper Table I: limitations and restrictions of related
//! approaches.

use karma_baselines::capability_table;

fn main() {
    karma_bench::rule("Table I — Limitations and Restrictions of Related Approaches");
    println!(
        "{:<22} {:<14} {:<12} {:<10} {:<11} {:<15} {:<14}",
        "Name",
        "Approach",
        "Min.Memory",
        "Universal",
        "Multi-node",
        "StrongScaling",
        "FaultTolerance"
    );
    for c in capability_table() {
        println!(
            "{:<22} {:<14} {:<12} {:<10} {:<11} {:<15} {:<14}",
            c.name,
            c.approach,
            c.min_memory,
            if c.universal { "yes" } else { "no" },
            if c.multi_node { "yes" } else { "no" },
            c.strong_scaling.to_string(),
            c.fault_tolerance.to_string(),
        );
    }
}

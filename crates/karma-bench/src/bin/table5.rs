//! Regenerate paper Table V: cost/performance of DP scale-out vs KARMA
//! scale-up, normalized to the first row.

use karma_bench::table5;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let t = table5::rows(quick);
    for (name, rows) in [("ResNet-50", &t.resnet50), ("ResNet-200", &t.resnet200)] {
        karma_bench::rule(&format!("Table V — {name}"));
        println!(
            "{:>12} {:>9} {:>8} | {:>11} {:>8}",
            "global batch", "DP GPUs", "DP $/P", "KARMA GPUs", "K $/P"
        );
        for r in rows {
            println!(
                "{:>12} {:>9} {:>8.3} | {:>11} {:>8.3}",
                r.global_batch, r.dp_gpus, r.dp_cost_perf, r.karma_gpus, r.karma_cost_perf
            );
        }
    }
    println!(
        "\nReading (cf. paper): KARMA is more cost effective for the first \
         batch increases, then\ndata parallelism wins as out-of-core slowdown \
         magnifies."
    );
}

//! Regenerate paper Table IV: Megatron-LM configurations — hybrid MP+DP
//! vs data-parallel KARMA (at half the GPUs).

use karma_bench::table4;

fn main() {
    karma_bench::rule("Table IV — Megatron-LM configurations");
    println!(
        "{:>6} {:>4} {:>4} {:>7} {:>4} {:>11} {:>12} {:>11} {:>12} {:>14}",
        "H", "A", "L", "P", "MP", "MP+DP GPUs", "s/iter", "KARMA GPUs", "s/iter", "perGPU advtg"
    );
    for r in table4::rows() {
        println!(
            "{:>6} {:>4} {:>4} {:>6.1}B {:>4} {:>11} {:>12.2} {:>11} {:>12.2} {:>13.2}x",
            r.hidden,
            r.heads,
            r.layers,
            r.params_b,
            r.mp,
            r.hybrid_gpus,
            r.hybrid_s_per_iter,
            r.karma_gpus,
            r.karma_s_per_iter,
            r.karma_per_gpu_advantage,
        );
    }
    println!(
        "\nPPL column: substituted by the execution-level bit-parity proof \
         (see EXPERIMENTS.md A1) —\nout-of-core execution cannot change \
         perplexity because it does not change the computation."
    );
}

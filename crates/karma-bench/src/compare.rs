//! The CI bench-regression gate (`check-bench`).
//!
//! Compares a freshly generated [`BenchReport`] against the committed
//! baseline and fails on a real slowdown of the optimized path. Because
//! the two reports generally come from different machines (a laptop
//! recorded the baseline, a CI runner the fresh one), absolute wall times
//! are not comparable; instead the gate normalizes per report:
//!
//! * **machine speed** cancels in the `optimized / baseline` wall-time
//!   ratio, since both modes of one report are measured in the same run;
//! * **thread count** only ever works in the gate's favor — a runner with
//!   more cores makes the parallel `optimized` mode faster, never slower,
//!   so a ratio regression beyond the threshold is a genuine code
//!   regression, not a topology artifact;
//! * **smoke mode** is pinned by refusing to compare reports whose
//!   `config` fields differ.
//!
//! The `blocks` fields double as a determinism canary: the same search
//! config must reproduce the same blocking on any host, so a drift fails
//! the gate even when timing looks fine.

use crate::report::BenchReport;

/// Default slowdown tolerance: fail beyond a 25% ratio regression.
pub const DEFAULT_MAX_SLOWDOWN: f64 = 0.25;

/// Executed-peak-bytes tolerance: fail beyond 10% growth. Peaks are byte
/// counts of a deterministic plan, so unlike wall times they compare
/// directly across machines; the headroom only absorbs legitimate small
/// plan shifts (a real residency regression — e.g. boundary eviction
/// silently dropped — blows well past it).
pub const DEFAULT_MAX_PEAK_GROWTH: f64 = 0.10;

/// Outcome of one gate evaluation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GateOutcome {
    /// Human-readable per-model observations.
    pub notes: Vec<String>,
    /// Violations; non-empty fails the gate.
    pub failures: Vec<String>,
}

impl GateOutcome {
    /// True when no violation was recorded.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Compare `fresh` against `baseline`, tolerating up to `max_slowdown`
/// (e.g. `0.25` = 25%) regression of the per-model optimized/baseline
/// wall-time ratio.
pub fn compare_reports(
    baseline: &BenchReport,
    fresh: &BenchReport,
    max_slowdown: f64,
) -> GateOutcome {
    let mut out = GateOutcome::default();
    if baseline.config != fresh.config {
        out.failures.push(format!(
            "config mismatch: baseline is '{}', fresh is '{}' — regenerate the committed \
             baseline with the same mode",
            baseline.config, fresh.config
        ));
        return out;
    }
    for model in baseline.models() {
        let pair = |r: &BenchReport| -> Option<(f64, f64)> {
            let base = r.entry(model, "baseline")?;
            let opt = r.entry(model, "optimized")?;
            Some((base.wall_ms, opt.wall_ms))
        };
        let Some((b_base, b_opt)) = pair(baseline) else {
            out.notes
                .push(format!("{model}: baseline report is incomplete, skipped"));
            continue;
        };
        let Some((f_base, f_opt)) = pair(fresh) else {
            out.failures
                .push(format!("{model}: missing from the fresh report"));
            continue;
        };
        // Determinism canary before any timing question.
        for mode in ["baseline", "optimized"] {
            let committed = baseline.entry(model, mode).unwrap().blocks;
            let got = fresh.entry(model, mode).unwrap().blocks;
            if committed != got {
                out.failures.push(format!(
                    "{model}/{mode}: plan drifted from {committed} to {got} blocks under an \
                     unchanged config — the search is no longer deterministic"
                ));
            }
        }
        let gate_ratio = |mode: &str, b_mode: f64, f_mode: f64| -> Result<String, String> {
            let r_old = b_mode / b_base.max(1e-9);
            let r_new = f_mode / f_base.max(1e-9);
            let limit = r_old * (1.0 + max_slowdown);
            if r_new > limit {
                Err(format!(
                    "{model}: {mode}/baseline wall-time ratio regressed from {r_old:.3} to \
                     {r_new:.3} (limit {limit:.3}, tolerance {:.0}%)",
                    max_slowdown * 100.0
                ))
            } else {
                Ok(format!(
                    "{model}/{mode}: ratio {r_new:.3} vs committed {r_old:.3} (limit {limit:.3}) \
                     — ok"
                ))
            }
        };
        let record = |out: &mut GateOutcome, res: Result<String, String>| match res {
            Ok(n) => out.notes.push(n),
            Err(e) => out.failures.push(e),
        };
        record(&mut out, gate_ratio("optimized", b_opt, f_opt));
        // Executed peak bytes gate every mode that records them (0 = the
        // mode never executes on the tensor stack, e.g. planner benches;
        // reports are regenerated whenever the schema changes, so both
        // sides always carry the field).
        for mode in [
            "baseline",
            "optimized",
            "distributed",
            "reference",
            "tiered",
            "elastic",
            "overlap",
            "zero_executed",
        ] {
            let (Some(b), Some(f)) = (baseline.entry(model, mode), fresh.entry(model, mode)) else {
                continue;
            };
            if b.peak_bytes != 0 && f.peak_bytes != 0 {
                let limit = b.peak_bytes as f64 * (1.0 + DEFAULT_MAX_PEAK_GROWTH);
                if f.peak_bytes as f64 > limit {
                    out.failures.push(format!(
                        "{model}/{mode}: executed peak bytes regressed from {} to {} (limit \
                         {limit:.0}, tolerance {:.0}%)",
                        b.peak_bytes,
                        f.peak_bytes,
                        DEFAULT_MAX_PEAK_GROWTH * 100.0
                    ));
                } else {
                    out.notes.push(format!(
                        "{model}/{mode}: executed peak {} B vs committed {} B — ok",
                        f.peak_bytes, b.peak_bytes
                    ));
                }
            }
            // Per-tier peaks gate with the same tolerance: a tiered run
            // that starts leaning harder on a fast tier is a residency
            // regression even when the whole-stack peak holds still.
            if b.peak_tier_bytes.is_empty() {
                continue;
            }
            if b.peak_tier_bytes.len() != f.peak_tier_bytes.len() {
                out.failures.push(format!(
                    "{model}/{mode}: tier stack drifted from {} to {} tiers under an unchanged \
                     config",
                    b.peak_tier_bytes.len(),
                    f.peak_tier_bytes.len()
                ));
                continue;
            }
            for (t, (&bp, &fp)) in b.peak_tier_bytes.iter().zip(&f.peak_tier_bytes).enumerate() {
                if bp == 0 || fp == 0 {
                    continue;
                }
                let limit = bp as f64 * (1.0 + DEFAULT_MAX_PEAK_GROWTH);
                if fp as f64 > limit {
                    out.failures.push(format!(
                        "{model}/{mode}: tier {t} peak regressed from {bp} to {fp} bytes (limit \
                         {limit:.0}, tolerance {:.0}%)",
                        DEFAULT_MAX_PEAK_GROWTH * 100.0
                    ));
                } else {
                    out.notes.push(format!(
                        "{model}/{mode}: tier {t} peak {fp} B vs committed {bp} B — ok"
                    ));
                }
            }
        }
        // Optional columns (the distributed data-parallel step, the
        // sequential global-batch reference, the tiered offload stack,
        // the elastic churn cycle, the asynchronous overlap engine, the
        // executed KARMA-on-ZeRO run) gate the same way once the
        // committed baseline carries them; their wall times normalize
        // against the same single-GPU baseline, so machine speed still
        // cancels.
        for mode in [
            "distributed",
            "reference",
            "tiered",
            "elastic",
            "overlap",
            "zero_executed",
        ] {
            match (baseline.entry(model, mode), fresh.entry(model, mode)) {
                (None, _) => {}
                (Some(_), None) => out.failures.push(format!(
                    "{model}: {mode} column missing from the fresh report"
                )),
                (Some(b), Some(f)) => {
                    if b.blocks != f.blocks {
                        out.failures.push(format!(
                            "{model}/{mode}: plan drifted from {} to {} blocks under an \
                             unchanged config — the search is no longer deterministic",
                            b.blocks, f.blocks
                        ));
                    }
                    record(&mut out, gate_ratio(mode, b.wall_ms, f.wall_ms));
                }
            }
        }
        // The distributed headline: sharding the global batch must beat
        // running it sequentially on one device. Both columns come from
        // the same run on the same machine, so their walls compare
        // directly — no normalization, no tolerance: the sequential
        // reference pays real extra offload work, and a distributed
        // step that fails to undercut it has lost the paper's argument.
        if let (Some(d), Some(r)) = (
            fresh.entry(model, "distributed"),
            fresh.entry(model, "reference"),
        ) {
            if d.wall_ms < r.wall_ms {
                out.notes.push(format!(
                    "{model}: distributed {:.3} ms/step beats the sequential global-batch \
                     reference {:.3} ms/step ({:.2}x) — ok",
                    d.wall_ms,
                    r.wall_ms,
                    r.wall_ms / d.wall_ms.max(1e-9)
                ));
            } else {
                out.failures.push(format!(
                    "{model}: distributed ({:.3} ms/step) no longer beats the sequential \
                     global-batch reference ({:.3} ms/step)",
                    d.wall_ms, r.wall_ms
                ));
            }
        }
        // The overlap headline: the asynchronous swap engine must beat
        // the synchronous optimized engine wherever the column is
        // recorded (transfer-bound workloads). Both columns come from
        // the same interleaved run on the same machine, so their walls
        // compare directly — no normalization, no tolerance: the only
        // difference between the two engines is whether the priced wire
        // time blocks compute, and an overlap column that fails to hide
        // it has lost the engine's whole argument.
        if let (Some(o), Some(s)) = (
            fresh.entry(model, "overlap"),
            fresh.entry(model, "optimized"),
        ) {
            if o.wall_ms < s.wall_ms {
                out.notes.push(format!(
                    "{model}: overlap {:.3} ms/step beats the synchronous optimized engine \
                     {:.3} ms/step ({:.2}x) — ok",
                    o.wall_ms,
                    s.wall_ms,
                    s.wall_ms / o.wall_ms.max(1e-9)
                ));
            } else {
                out.failures.push(format!(
                    "{model}: overlap ({:.3} ms/step) no longer beats the synchronous optimized \
                     engine ({:.3} ms/step) — the I/O lanes stopped hiding transfer time",
                    o.wall_ms, s.wall_ms
                ));
            }
        }
    }
    for model in fresh.models() {
        if !baseline.models().contains(&model) {
            out.notes
                .push(format!("{model}: new workload, no committed baseline yet"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{BenchEntry, ModelSpeedup};

    fn entry(model: &str, mode: &str, wall_ms: f64, threads: usize, blocks: usize) -> BenchEntry {
        BenchEntry {
            model: model.into(),
            mode: mode.into(),
            wall_ms,
            threads,
            memoize: mode == "optimized",
            blocks,
            peak_bytes: 0,
            peak_tier_bytes: vec![],
        }
    }

    fn report(config: &str, pairs: &[(&str, f64, f64, usize)]) -> BenchReport {
        BenchReport {
            config: config.into(),
            host_threads: 4,
            entries: pairs
                .iter()
                .flat_map(|&(m, base, opt, blocks)| {
                    vec![
                        entry(m, "baseline", base, 1, blocks),
                        entry(m, "optimized", opt, 4, blocks),
                    ]
                })
                .collect(),
            speedup: pairs
                .iter()
                .map(|&(m, base, opt, _)| ModelSpeedup {
                    model: m.into(),
                    speedup: base / opt,
                })
                .collect(),
        }
    }

    fn with_distributed(mut r: BenchReport, m: &str, wall_ms: f64, blocks: usize) -> BenchReport {
        r.entries.push(entry(m, "distributed", wall_ms, 1, blocks));
        r
    }

    #[test]
    fn distributed_column_gates_like_optimized() {
        let base = || report("smoke", &[("resnet", 100.0, 40.0, 7)]);
        let old = with_distributed(base(), "resnet", 200.0, 7);
        // 5% drift: within tolerance.
        let ok = with_distributed(base(), "resnet", 210.0, 7);
        assert!(compare_reports(&old, &ok, DEFAULT_MAX_SLOWDOWN).passed());
        // 50% ratio regression of the distributed step: fails.
        let bad = with_distributed(base(), "resnet", 300.0, 7);
        let out = compare_reports(&old, &bad, DEFAULT_MAX_SLOWDOWN);
        assert!(!out.passed());
        assert!(
            out.failures[0].contains("distributed/baseline"),
            "{:?}",
            out.failures
        );
    }

    #[test]
    fn dropped_distributed_column_fails() {
        let old = with_distributed(
            report("smoke", &[("resnet", 100.0, 40.0, 7)]),
            "resnet",
            200.0,
            7,
        );
        let new = report("smoke", &[("resnet", 100.0, 40.0, 7)]);
        let out = compare_reports(&old, &new, DEFAULT_MAX_SLOWDOWN);
        assert!(!out.passed());
        assert!(out.failures[0].contains("distributed column missing"));
    }

    #[test]
    fn baseline_without_distributed_column_skips_the_gate() {
        // Old baselines predate the column: a fresh report carrying it is
        // noted as uncovered, not failed.
        let old = report("smoke", &[("resnet", 100.0, 40.0, 7)]);
        let new = with_distributed(
            report("smoke", &[("resnet", 100.0, 40.0, 7)]),
            "resnet",
            500.0,
            7,
        );
        assert!(compare_reports(&old, &new, DEFAULT_MAX_SLOWDOWN).passed());
    }

    #[test]
    fn distributed_blocks_drift_fails() {
        let old = with_distributed(
            report("smoke", &[("resnet", 100.0, 40.0, 7)]),
            "resnet",
            200.0,
            7,
        );
        let new = with_distributed(
            report("smoke", &[("resnet", 100.0, 40.0, 7)]),
            "resnet",
            200.0,
            9,
        );
        let out = compare_reports(&old, &new, DEFAULT_MAX_SLOWDOWN);
        assert!(!out.passed());
        assert!(out.failures[0].contains("deterministic"));
    }

    fn with_elastic(mut r: BenchReport, m: &str, wall_ms: f64, blocks: usize) -> BenchReport {
        r.entries.push(entry(m, "elastic", wall_ms, 1, blocks));
        r
    }

    #[test]
    fn elastic_column_gates_like_the_other_executed_modes() {
        let base = || report("smoke", &[("resnet", 100.0, 40.0, 7)]);
        let old = with_elastic(base(), "resnet", 250.0, 7);
        // Within tolerance: passes.
        let ok = with_elastic(base(), "resnet", 260.0, 7);
        assert!(compare_reports(&old, &ok, DEFAULT_MAX_SLOWDOWN).passed());
        // A churn cycle that got 60% slower relative to baseline: fails.
        let bad = with_elastic(base(), "resnet", 400.0, 7);
        let out = compare_reports(&old, &bad, DEFAULT_MAX_SLOWDOWN);
        assert!(!out.passed());
        assert!(
            out.failures[0].contains("elastic/baseline"),
            "{:?}",
            out.failures
        );
        // Dropping the column entirely also fails.
        let out = compare_reports(&old, &base(), DEFAULT_MAX_SLOWDOWN);
        assert!(!out.passed());
        assert!(out.failures[0].contains("elastic column missing"));
    }

    fn with_peak(mut r: BenchReport, mode: &str, peak: usize) -> BenchReport {
        for e in &mut r.entries {
            if e.mode == mode {
                e.peak_bytes = peak;
            }
        }
        r
    }

    #[test]
    fn peak_bytes_regression_beyond_ten_percent_fails() {
        let old = with_peak(
            report("smoke", &[("resnet", 100.0, 40.0, 7)]),
            "optimized",
            1000,
        );
        let ok = with_peak(
            report("smoke", &[("resnet", 100.0, 40.0, 7)]),
            "optimized",
            1099,
        );
        assert!(compare_reports(&old, &ok, DEFAULT_MAX_SLOWDOWN).passed());
        let bad = with_peak(
            report("smoke", &[("resnet", 100.0, 40.0, 7)]),
            "optimized",
            1200,
        );
        let out = compare_reports(&old, &bad, DEFAULT_MAX_SLOWDOWN);
        assert!(!out.passed());
        assert!(
            out.failures[0].contains("executed peak bytes regressed"),
            "{:?}",
            out.failures
        );
    }

    #[test]
    fn peak_bytes_gate_skips_unrecorded_columns() {
        // A zero on either side means the mode never executes (planner
        // benches): no gate, and shrinking peaks always pass.
        let old = report("smoke", &[("resnet", 100.0, 40.0, 7)]);
        let new = with_peak(
            report("smoke", &[("resnet", 100.0, 40.0, 7)]),
            "optimized",
            999_999,
        );
        assert!(compare_reports(&old, &new, DEFAULT_MAX_SLOWDOWN).passed());
        let old = with_peak(
            report("smoke", &[("resnet", 100.0, 40.0, 7)]),
            "optimized",
            1000,
        );
        let smaller = with_peak(
            report("smoke", &[("resnet", 100.0, 40.0, 7)]),
            "optimized",
            500,
        );
        assert!(compare_reports(&old, &smaller, DEFAULT_MAX_SLOWDOWN).passed());
    }

    fn with_tiered(mut r: BenchReport, m: &str, tiers: Vec<usize>) -> BenchReport {
        let mut e = entry(m, "tiered", 50.0, 1, 7);
        e.peak_bytes = tiers.iter().sum();
        e.peak_tier_bytes = tiers;
        r.entries.push(e);
        r
    }

    #[test]
    fn per_tier_peak_regression_beyond_ten_percent_fails() {
        let base = || report("smoke", &[("resnet", 100.0, 40.0, 7)]);
        let old = with_tiered(base(), "resnet", vec![1000, 4000]);
        // 5% growth in the fast tier: within tolerance.
        let ok = with_tiered(base(), "resnet", vec![1050, 3950]);
        let out = compare_reports(&old, &ok, DEFAULT_MAX_SLOWDOWN);
        assert!(out.passed(), "{:?}", out.failures);
        // 20% growth in the fast tier regresses even though the
        // whole-stack peak is unchanged.
        let bad = with_tiered(base(), "resnet", vec![1200, 3800]);
        let out = compare_reports(&old, &bad, DEFAULT_MAX_SLOWDOWN);
        assert!(!out.passed());
        assert!(
            out.failures[0].contains("tier 0 peak regressed"),
            "{:?}",
            out.failures
        );
    }

    #[test]
    fn tier_count_drift_fails() {
        let base = || report("smoke", &[("resnet", 100.0, 40.0, 7)]);
        let old = with_tiered(base(), "resnet", vec![1000, 4000]);
        let new = with_tiered(base(), "resnet", vec![1000, 2000, 2000]);
        let out = compare_reports(&old, &new, DEFAULT_MAX_SLOWDOWN);
        assert!(!out.passed());
        assert!(
            out.failures[0].contains("tier stack drifted"),
            "{:?}",
            out.failures
        );
    }

    #[test]
    fn tiered_column_wall_time_gates_like_distributed() {
        let base = || report("smoke", &[("resnet", 100.0, 40.0, 7)]);
        let old = with_tiered(base(), "resnet", vec![1000, 4000]);
        let mut bad = with_tiered(base(), "resnet", vec![1000, 4000]);
        bad.entries.last_mut().unwrap().wall_ms = 90.0; // 80% ratio regression
        let out = compare_reports(&old, &bad, DEFAULT_MAX_SLOWDOWN);
        assert!(!out.passed());
        assert!(
            out.failures
                .iter()
                .any(|f| f.contains("tiered/baseline wall-time ratio")),
            "{:?}",
            out.failures
        );
        // Dropping the column also fails.
        let out = compare_reports(&old, &base(), DEFAULT_MAX_SLOWDOWN);
        assert!(!out.passed());
        assert!(out.failures[0].contains("tiered column missing"));
    }

    fn with_reference(mut r: BenchReport, m: &str, wall_ms: f64, blocks: usize) -> BenchReport {
        r.entries.push(entry(m, "reference", wall_ms, 1, blocks));
        r
    }

    #[test]
    fn distributed_must_beat_the_sequential_reference() {
        let base = || {
            with_distributed(
                report("smoke", &[("conv", 100.0, 40.0, 7)]),
                "conv",
                60.0,
                7,
            )
        };
        let old = with_reference(base(), "conv", 90.0, 9);
        // Fresh run keeps the win: passes, with a note recording the margin.
        let ok = with_reference(base(), "conv", 90.0, 9);
        let out = compare_reports(&old, &ok, DEFAULT_MAX_SLOWDOWN);
        assert!(out.passed(), "{:?}", out.failures);
        assert!(out.notes.iter().any(|n| n.contains("beats the sequential")));
        // Fresh run loses the win — even inside the ratio tolerance,
        // the headline comparison has no tolerance.
        let mut bad = with_reference(base(), "conv", 90.0, 9);
        for e in &mut bad.entries {
            if e.mode == "distributed" {
                e.wall_ms = 95.0;
            }
        }
        let out = compare_reports(&old, &bad, DEFAULT_MAX_SLOWDOWN);
        assert!(!out.passed());
        assert!(
            out.failures
                .iter()
                .any(|f| f.contains("no longer beats the sequential")),
            "{:?}",
            out.failures
        );
        // Dropping the reference column entirely also fails.
        let out = compare_reports(&old, &base(), DEFAULT_MAX_SLOWDOWN);
        assert!(!out.passed());
        assert!(
            out.failures
                .iter()
                .any(|f| f.contains("reference column missing")),
            "{:?}",
            out.failures
        );
    }

    #[test]
    fn reference_column_wall_time_gates_like_distributed() {
        let base = || {
            with_distributed(
                report("smoke", &[("conv", 100.0, 40.0, 7)]),
                "conv",
                60.0,
                7,
            )
        };
        let old = with_reference(base(), "conv", 90.0, 9);
        // The reference getting 80% faster relative to baseline would
        // shrink the committed margin silently: the ratio gate is
        // two-sided only for slowdowns, so speedups pass — but a
        // slowdown of the reference is NOT a regression of our code, it
        // still must pass the ratio gate upward within tolerance.
        let mut slower = with_reference(base(), "conv", 100.0, 9);
        slower.entries.last_mut().unwrap().wall_ms = 100.0; // +11%: within 25%
        let out = compare_reports(&old, &slower, DEFAULT_MAX_SLOWDOWN);
        assert!(out.passed(), "{:?}", out.failures);
    }

    fn with_overlap(mut r: BenchReport, m: &str, wall_ms: f64, blocks: usize) -> BenchReport {
        r.entries.push(entry(m, "overlap", wall_ms, 1, blocks));
        r
    }

    #[test]
    fn overlap_must_beat_the_synchronous_optimized_column() {
        let base = || report("smoke", &[("conv", 100.0, 40.0, 7)]);
        let old = with_overlap(base(), "conv", 25.0, 7);
        // Fresh run keeps the win: passes, with a note recording the margin.
        let ok = with_overlap(base(), "conv", 30.0, 7);
        let out = compare_reports(&old, &ok, DEFAULT_MAX_SLOWDOWN);
        assert!(out.passed(), "{:?}", out.failures);
        assert!(
            out.notes
                .iter()
                .any(|n| n.contains("beats the synchronous optimized")),
            "{:?}",
            out.notes
        );
        // Fresh run loses the win — the headline comparison has no
        // tolerance, even when the ratio gate would still pass.
        let bad = with_overlap(base(), "conv", 41.0, 7);
        let out = compare_reports(&old, &bad, DEFAULT_MAX_SLOWDOWN);
        assert!(!out.passed());
        assert!(
            out.failures
                .iter()
                .any(|f| f.contains("no longer beats the synchronous optimized")),
            "{:?}",
            out.failures
        );
    }

    #[test]
    fn overlap_column_gates_like_the_other_executed_modes() {
        let base = || report("smoke", &[("conv", 100.0, 40.0, 7)]);
        let old = with_overlap(base(), "conv", 20.0, 7);
        // Within ratio tolerance: passes.
        let ok = with_overlap(base(), "conv", 22.0, 7);
        assert!(compare_reports(&old, &ok, DEFAULT_MAX_SLOWDOWN).passed());
        // A 75% ratio regression of the overlap step: fails (still under
        // the optimized wall, so only the ratio gate trips).
        let bad = with_overlap(base(), "conv", 35.0, 7);
        let out = compare_reports(&old, &bad, DEFAULT_MAX_SLOWDOWN);
        assert!(!out.passed());
        assert!(
            out.failures
                .iter()
                .any(|f| f.contains("overlap/baseline wall-time ratio")),
            "{:?}",
            out.failures
        );
        // Dropping the column entirely also fails.
        let out = compare_reports(&old, &base(), DEFAULT_MAX_SLOWDOWN);
        assert!(!out.passed());
        assert!(
            out.failures
                .iter()
                .any(|f| f.contains("overlap column missing")),
            "{:?}",
            out.failures
        );
        // A blocks drift in the overlap column trips the determinism
        // canary.
        let drifted = with_overlap(base(), "conv", 20.0, 9);
        let out = compare_reports(&old, &drifted, DEFAULT_MAX_SLOWDOWN);
        assert!(!out.passed());
        assert!(
            out.failures.iter().any(|f| f.contains("deterministic")),
            "{:?}",
            out.failures
        );
    }

    #[test]
    fn identical_reports_pass() {
        let r = report("smoke", &[("resnet", 100.0, 40.0, 7)]);
        let out = compare_reports(&r, &r, DEFAULT_MAX_SLOWDOWN);
        assert!(out.passed(), "{:?}", out.failures);
    }

    #[test]
    fn synthetic_30_percent_ratio_regression_fails() {
        let old = report("smoke", &[("resnet", 100.0, 40.0, 7)]);
        // Same baseline cost, optimized 30% slower in ratio terms.
        let new = report("smoke", &[("resnet", 100.0, 52.0, 7)]);
        let out = compare_reports(&old, &new, DEFAULT_MAX_SLOWDOWN);
        assert!(!out.passed());
        assert!(out.failures[0].contains("regressed"), "{:?}", out.failures);
    }

    #[test]
    fn ten_percent_regression_is_within_tolerance() {
        let old = report("smoke", &[("resnet", 100.0, 40.0, 7)]);
        let new = report("smoke", &[("resnet", 100.0, 44.0, 7)]);
        assert!(compare_reports(&old, &new, DEFAULT_MAX_SLOWDOWN).passed());
    }

    #[test]
    fn machine_speed_is_normalized_away() {
        // The CI runner is 3x slower across the board: absolute times grow,
        // the ratio does not, the gate passes.
        let old = report("smoke", &[("resnet", 100.0, 40.0, 7)]);
        let new = report("smoke", &[("resnet", 300.0, 120.0, 7)]);
        assert!(compare_reports(&old, &new, DEFAULT_MAX_SLOWDOWN).passed());
    }

    #[test]
    fn blocks_drift_fails_the_determinism_canary() {
        let old = report("smoke", &[("resnet", 100.0, 40.0, 7)]);
        let new = report("smoke", &[("resnet", 100.0, 40.0, 9)]);
        let out = compare_reports(&old, &new, DEFAULT_MAX_SLOWDOWN);
        assert!(!out.passed());
        assert!(out.failures[0].contains("deterministic"));
    }

    #[test]
    fn missing_model_fails_new_model_notes() {
        let old = report("smoke", &[("resnet", 100.0, 40.0, 7)]);
        let new = report("smoke", &[("vgg", 80.0, 30.0, 5)]);
        let out = compare_reports(&old, &new, DEFAULT_MAX_SLOWDOWN);
        assert!(!out.passed(), "dropped coverage must fail");
        assert!(out.notes.iter().any(|n| n.contains("new workload")));
    }

    #[test]
    fn config_mismatch_is_refused() {
        let old = report("default", &[("resnet", 100.0, 40.0, 7)]);
        let new = report("smoke", &[("resnet", 100.0, 40.0, 7)]);
        let out = compare_reports(&old, &new, DEFAULT_MAX_SLOWDOWN);
        assert!(!out.passed());
        assert!(out.failures[0].contains("config mismatch"));
    }
}

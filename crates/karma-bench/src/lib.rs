//! Benchmark harness for the KARMA reproduction: one module per paper
//! artifact, each producing the same rows/series the paper reports.
//!
//! | module | paper artifact |
//! |---|---|
//! | [`fig5`] | Fig. 5 — single-GPU throughput vs batch, 6 models × 6 methods |
//! | [`fig6`] | Fig. 6 — per-layer backward stall profile, ResNet-200 |
//! | [`fig7`] | Fig. 7 — best blocking for ResNet-50 + stall reductions |
//! | [`fig8`] | Fig. 8 — parity scaling, Megatron-LM & Turing-NLG |
//! | `table1` (binary) | Table I — capability matrix |
//! | [`table4`] | Table IV — Megatron-LM configurations |
//! | [`table5`] | Table V — cost/performance |
//! | [`ablation`] | DESIGN.md X1/X2 — strategy and solver ablations |
//!
//! Binaries under `src/bin/` print the tables; criterion benches under
//! `benches/` time the underlying planning/simulation kernels.
//!
//! Beyond the paper artifacts, [`report`] defines the `BENCH_*.json`
//! schema written by the perf-trajectory binaries (`planner_bench` for
//! the search, `exec_bench` for the plan→runtime execution path) and
//! [`compare`] implements the CI regression gate (`bench_compare`) over
//! those files.
//!
//! **Workspace position:** the top of the dependency order — depends on
//! both the analysis-side crates and (for `exec_bench`) the execution
//! stack, and is depended on by nothing.

pub mod ablation;
pub mod compare;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod report;
pub mod table4;
pub mod table5;

/// Pretty separator for the harness binaries.
pub fn rule(title: &str) {
    println!("\n=== {title} ===");
}

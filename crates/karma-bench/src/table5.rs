//! Table V: cost/performance ($/P) of data-parallel scale-out vs KARMA
//! batch scale-up for ResNet-50 and ResNet-200, normalized to the first
//! row. The paper's first-row global batches: 12.8K (ResNet-50 at 128 per
//! GPU x 100 GPUs) and 400 (ResNet-200 at 4 per GPU x 100 GPUs).

use karma_dist::{cost_perf_table, CostPerfRow};
use karma_graph::MemoryParams;
use karma_zoo::{resnet, CAL_RESNET200, CAL_RESNET50};
use serde::{Deserialize, Serialize};

/// Both halves of the table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table5 {
    /// ResNet-50 rows (global batch 12.8K..76.8K).
    pub resnet50: Vec<CostPerfRow>,
    /// ResNet-200 rows (global batch 400..2.4K).
    pub resnet200: Vec<CostPerfRow>,
}

/// The paper's multipliers: 1x..6x over the 100-GPU baseline.
pub const STEPS: [usize; 6] = [1, 2, 3, 4, 5, 6];

/// Reproduce the table. `quick` limits to 3 steps for tests/benches.
pub fn rows(quick: bool) -> Table5 {
    let steps: &[usize] = if quick { &STEPS[..3] } else { &STEPS };
    // Each half parallelizes over its steps inside `cost_perf_table`;
    // nested regions width-share the pool, so an outer join would only
    // interleave the two step sweeps over the same lanes — the halves
    // run in turn for clearer attribution, at the same total width.
    Table5 {
        resnet50: cost_perf_table(
            &resnet::resnet50(),
            128,
            100,
            steps,
            &MemoryParams::calibrated(CAL_RESNET50),
        ),
        resnet200: cost_perf_table(
            &resnet::resnet200(),
            4,
            100,
            steps,
            &MemoryParams::calibrated(CAL_RESNET200),
        ),
    }
}

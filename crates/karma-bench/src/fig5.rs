//! Fig. 5: training throughput (samples/s) vs mini-batch size on a single
//! V100 16 GiB, for six models and six methods. Only the first batch size
//! of each model fits in memory.

use karma_baselines::{run_baseline, Baseline};
use karma_core::planner::{Karma, KarmaOptions};
use karma_hw::NodeSpec;
use karma_zoo::{fig5_workloads, Fig5Workload};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// One measured point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig5Point {
    /// Model name.
    pub model: String,
    /// Mini-batch size.
    pub batch: usize,
    /// Method label (paper legend).
    pub method: String,
    /// Throughput (samples/s); `None` = OOM / infeasible.
    pub samples_per_sec: Option<f64>,
}

/// The method columns of the figure, in legend order.
pub const METHODS: [&str; 6] = [
    "in-core",
    "vDNN++",
    "SuperNeurons",
    "Checkmate",
    "KARMA",
    "KARMA (w/ re-computation)",
];

/// Produce every point for the named models (all six when `None`).
/// `quick` restricts each model to its first OOC batch size — used by the
/// criterion bench and integration tests.
pub fn run(models: Option<&[&str]>, quick: bool) -> Vec<Fig5Point> {
    let node = NodeSpec::abci();
    // Expand the model × batch grid up front, then score every cell in
    // parallel — each cell is an independent planner + baseline run, and
    // the order-preserving collect keeps the output row order identical to
    // the sequential sweep.
    let mut cells: Vec<(Fig5Workload, usize)> = Vec::new();
    for w in fig5_workloads() {
        if let Some(filter) = models {
            if !filter.contains(&w.model.name.as_str()) {
                continue;
            }
        }
        let batches: Vec<usize> = if quick {
            w.batch_sizes[..2.min(w.batch_sizes.len())].to_vec()
        } else {
            w.batch_sizes.clone()
        };
        cells.extend(batches.into_iter().map(|b| (w.clone(), b)));
    }
    cells
        .par_iter()
        .map(|(w, batch)| points_for(w, *batch, &node))
        .collect::<Vec<_>>()
        .into_iter()
        .flatten()
        .collect()
}

fn points_for(w: &Fig5Workload, batch: usize, node: &NodeSpec) -> Vec<Fig5Point> {
    let planner = Karma::new(node.clone(), w.mem.clone());
    let mut points = Vec::with_capacity(METHODS.len());
    let mut push = |method: &str, v: Option<f64>| {
        points.push(Fig5Point {
            model: w.model.name.clone(),
            batch,
            method: method.to_owned(),
            samples_per_sec: v,
        });
    };

    // In-core is only valid while the profiled footprint fits the device —
    // the same boundary the zoo calibration pins to the paper's Fig. 5
    // x-axes ("only the first reported mini-batch size fits in memory").
    let fits = w.model.peak_footprint(batch, &w.mem) <= node.gpu.usable_bytes();
    let ic = run_baseline(Baseline::InCore, &w.model, batch, node, &w.mem).ok();
    push(
        "in-core",
        ic.as_ref().filter(|_| fits).map(|r| r.samples_per_sec()),
    );
    for (b, label) in [
        (Baseline::VdnnPlusPlus, "vDNN++"),
        (Baseline::SuperNeurons, "SuperNeurons"),
        (Baseline::Checkmate, "Checkmate"),
    ] {
        // A method whose best schedule still exceeds device memory is OOM
        // at this batch (e.g. Checkmate past its O(sqrt N) checkpoint
        // floor, Table I).
        let r = run_baseline(b, &w.model, batch, node, &w.mem)
            .ok()
            .filter(|r| r.metrics.capacity_ok);
        push(label, r.map(|r| r.samples_per_sec()));
    }
    let karma = planner
        .plan(&w.model, batch, &KarmaOptions::without_recompute())
        .ok()
        .filter(|p| p.metrics.capacity_ok);
    push("KARMA", karma.map(|p| p.samples_per_sec()));
    let karma_r = planner
        .plan(&w.model, batch, &KarmaOptions::default())
        .ok()
        .filter(|p| p.metrics.capacity_ok);
    push(
        "KARMA (w/ re-computation)",
        karma_r.map(|p| p.samples_per_sec()),
    );
    points
}

/// Headline aggregates the paper quotes from this figure.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig5Summary {
    /// Geometric-mean speedup of KARMA (w/ recompute) over the best prior
    /// **out-of-core** method (vDNN++, SuperNeurons) across all OOC points
    /// — the population behind the paper's "1.52x over the state-of-the-art
    /// out-of-core … methods".
    pub mean_speedup_over_best_ooc: f64,
    /// Geometric-mean speedup over Checkmate (the strongest recompute
    /// method) across the same points.
    pub mean_speedup_over_checkmate: f64,
    /// Range of KARMA throughput degradation vs the in-core point, across
    /// models at their largest batch (paper: 9%-37% for 2x-6x batches).
    pub degradation_range: (f64, f64),
}

/// Compute the summary over a set of points.
pub fn summarize(points: &[Fig5Point]) -> Fig5Summary {
    let mut ooc_speedups = Vec::new();
    let mut ck_speedups = Vec::new();
    let mut degradations = Vec::new();
    let models: std::collections::BTreeSet<&str> =
        points.iter().map(|p| p.model.as_str()).collect();
    for m in models {
        let of = |method: &str, batch: usize| -> Option<f64> {
            points
                .iter()
                .find(|p| p.model == m && p.batch == batch && p.method == method)
                .and_then(|p| p.samples_per_sec)
        };
        let batches: std::collections::BTreeSet<usize> = points
            .iter()
            .filter(|p| p.model == m)
            .map(|p| p.batch)
            .collect();
        let batches: Vec<usize> = batches.into_iter().collect();
        let in_core_ref = of("in-core", batches[0]);
        for (i, &b) in batches.iter().enumerate() {
            let karma = of("KARMA (w/ re-computation)", b);
            let best_ooc = ["vDNN++", "SuperNeurons"]
                .iter()
                .filter_map(|p| of(p, b))
                .fold(f64::NAN, f64::max);
            if i > 0 {
                if let (Some(k), true) = (karma, best_ooc.is_finite()) {
                    ooc_speedups.push(k / best_ooc);
                }
                if let (Some(k), Some(ck)) = (karma, of("Checkmate", b)) {
                    ck_speedups.push(k / ck);
                }
            }
            if i + 1 == batches.len() {
                if let (Some(k), Some(ic)) = (karma, in_core_ref) {
                    // In-core throughput projected to this batch is ~flat
                    // (compute-bound), so degradation compares samples/s.
                    degradations.push(1.0 - k / ic);
                }
            }
        }
    }
    let gm = |v: &[f64]| -> f64 {
        if v.is_empty() {
            1.0
        } else {
            (v.iter().map(|s| s.ln()).sum::<f64>() / v.len() as f64).exp()
        }
    };
    let lo = degradations.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = degradations
        .iter()
        .copied()
        .fold(f64::NEG_INFINITY, f64::max);
    Fig5Summary {
        mean_speedup_over_best_ooc: gm(&ooc_speedups),
        mean_speedup_over_checkmate: gm(&ck_speedups),
        degradation_range: (lo, hi),
    }
}

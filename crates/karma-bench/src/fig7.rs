//! Fig. 7: the best blocking KARMA finds for ResNet-50/ImageNet at batch
//! 512 on a V100, plus the stall reductions quoted in the text (−43% vs
//! SuperNeurons, −37% vs vDNN++).

use karma_baselines::{run_baseline, Baseline};
use karma_core::planner::{Karma, KarmaOptions, KarmaPlan};
use karma_hw::NodeSpec;
use karma_sim::LaneKind;
use karma_zoo::fig5_workloads;
use serde::{Deserialize, Serialize};

/// Fig. 7 batch size.
pub const BATCH: usize = 512;

/// The blocking and its derived statistics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig7Result {
    /// For each block: (first layer name, last layer name, #layers).
    pub blocks: Vec<(String, String, usize)>,
    /// Compute-lane stall seconds for KARMA (w/ recompute).
    pub karma_stall: f64,
    /// Stall reduction vs SuperNeurons (fraction, paper: 0.43).
    pub reduction_vs_superneurons: f64,
    /// Stall reduction vs vDNN++ (fraction, paper: 0.37).
    pub reduction_vs_vdnn: f64,
    /// The paper-notation schedule prefix.
    pub notation_prefix: String,
}

/// Run the experiment.
pub fn blocking() -> (KarmaPlan, Fig7Result) {
    let w = fig5_workloads()
        .into_iter()
        .find(|w| w.model.name == "ResNet-50")
        .unwrap();
    let node = NodeSpec::abci();
    let planner = Karma::new(node.clone(), w.mem.clone());
    // The planner's internal ACO batch evaluation width-shares the
    // persistent pool, so wrapping it in a join gains nothing; only the
    // two cheap baseline references — plain simulations — overlap as a
    // pair.
    let plan = planner
        .plan(&w.model, BATCH, &KarmaOptions::default())
        .unwrap();
    let (sn, vd) = rayon::join(
        || run_baseline(Baseline::SuperNeurons, &w.model, BATCH, &node, &w.mem).unwrap(),
        || run_baseline(Baseline::VdnnPlusPlus, &w.model, BATCH, &node, &w.mem).unwrap(),
    );

    let blocks = plan
        .partition
        .blocks()
        .map(|b| {
            let first = &w.model.layers[b.layers.start].name;
            let last = &w.model.layers[b.layers.end - 1].name;
            (first.clone(), last.clone(), b.len())
        })
        .collect();

    let karma_stall = plan.trace.lane_stall(LaneKind::Compute);
    let sn_stall = sn.trace.lane_stall(LaneKind::Compute);
    let vd_stall = vd.trace.lane_stall(LaneKind::Compute);

    let notation = plan.notation();
    let prefix: String = notation.chars().take(100).collect();
    let result = Fig7Result {
        blocks,
        karma_stall,
        reduction_vs_superneurons: 1.0 - karma_stall / sn_stall,
        reduction_vs_vdnn: 1.0 - karma_stall / vd_stall,
        notation_prefix: prefix,
    };
    (plan, result)
}

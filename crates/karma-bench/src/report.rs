//! The `BENCH_*.json` report schema shared by the perf-trajectory
//! binaries (`planner_bench`, `exec_bench`) and the CI regression gate
//! (`bench_compare`).
//!
//! Every report carries, per model, a `baseline` and an `optimized` entry
//! **measured in the same run on the same machine**. The gate compares
//! the optimized/baseline *ratio* across reports, which cancels machine
//! speed — the only honest way to diff wall times recorded on different
//! hosts.

use serde::{Deserialize, Serialize};

/// One timed configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchEntry {
    /// Workload name.
    pub model: String,
    /// `"baseline"` or `"optimized"`.
    pub mode: String,
    /// Median wall time (ms).
    pub wall_ms: f64,
    /// Worker threads the mode ran with.
    pub threads: usize,
    /// Whether evaluation memoization was on (planner benches).
    pub memoize: bool,
    /// Blocks in the produced plan — a determinism canary: the same
    /// config must reproduce the same blocking on any machine.
    pub blocks: usize,
    /// Executed near-memory peak (bytes) of this mode's run — `0` when
    /// the mode does not execute on the tensor stack (planner benches).
    /// Byte counts are machine-independent, so the gate compares them
    /// directly (no ratio normalization needed).
    pub peak_bytes: usize,
    /// Per-tier executed far-memory peaks (bytes, fastest tier first) of
    /// this mode's run — empty when the mode does not execute, or runs
    /// the single-pool executor where the whole-pool `peak_bytes` says
    /// everything. Like `peak_bytes`, gated directly across machines.
    pub peak_tier_bytes: Vec<usize>,
}

/// Per-model speedup headline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelSpeedup {
    /// Workload name.
    pub model: String,
    /// baseline wall time / optimized wall time.
    pub speedup: f64,
}

/// A full `BENCH_*.json` document.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchReport {
    /// `"smoke"` (CI-sized) or `"default"` (full trajectory anchor).
    pub config: String,
    /// Hardware threads of the recording host.
    pub host_threads: usize,
    /// All timed entries.
    pub entries: Vec<BenchEntry>,
    /// Per-model headlines.
    pub speedup: Vec<ModelSpeedup>,
}

impl BenchReport {
    /// The entry for `(model, mode)`, if present.
    pub fn entry(&self, model: &str, mode: &str) -> Option<&BenchEntry> {
        self.entries
            .iter()
            .find(|e| e.model == model && e.mode == mode)
    }

    /// Model names in first-appearance order.
    pub fn models(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for e in &self.entries {
            if !out.contains(&e.model.as_str()) {
                out.push(&e.model);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> BenchReport {
        BenchReport {
            config: "smoke".into(),
            host_threads: 4,
            entries: vec![
                BenchEntry {
                    model: "m".into(),
                    mode: "baseline".into(),
                    wall_ms: 10.0,
                    threads: 1,
                    memoize: false,
                    blocks: 5,
                    peak_bytes: 1024,
                    peak_tier_bytes: vec![],
                },
                BenchEntry {
                    model: "m".into(),
                    mode: "optimized".into(),
                    wall_ms: 4.0,
                    threads: 4,
                    memoize: true,
                    blocks: 5,
                    peak_bytes: 768,
                    peak_tier_bytes: vec![512, 256],
                },
            ],
            speedup: vec![ModelSpeedup {
                model: "m".into(),
                speedup: 2.5,
            }],
        }
    }

    #[test]
    fn report_round_trips_through_json() {
        let r = report();
        let json = serde_json::to_string(&r).unwrap();
        let back: BenchReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn lookup_helpers() {
        let r = report();
        assert_eq!(r.models(), vec!["m"]);
        assert_eq!(r.entry("m", "baseline").unwrap().wall_ms, 10.0);
        assert!(r.entry("m", "nope").is_none());
    }
}

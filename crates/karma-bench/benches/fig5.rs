//! Criterion bench for the Fig. 5 kernel: planning + simulating one
//! out-of-core configuration per method.

use criterion::{criterion_group, criterion_main, Criterion};
use karma_baselines::{run_baseline, Baseline};
use karma_core::planner::{Karma, KarmaOptions};
use karma_hw::NodeSpec;
use karma_zoo::fig5_workloads;

fn bench_fig5(c: &mut Criterion) {
    let w = fig5_workloads()
        .into_iter()
        .find(|w| w.model.name == "ResNet-200")
        .unwrap();
    let node = NodeSpec::abci();
    let batch = 12;
    let mut group = c.benchmark_group("fig5_resnet200_b12");
    group.sample_size(10);
    group.bench_function("karma_plan_with_recompute", |b| {
        let planner = Karma::new(node.clone(), w.mem.clone());
        b.iter(|| {
            planner
                .plan(&w.model, batch, &KarmaOptions::fast(1))
                .unwrap()
        })
    });
    group.bench_function("vdnn_plan", |b| {
        b.iter(|| run_baseline(Baseline::VdnnPlusPlus, &w.model, batch, &node, &w.mem).unwrap())
    });
    group.bench_function("checkmate_plan", |b| {
        b.iter(|| run_baseline(Baseline::Checkmate, &w.model, batch, &node, &w.mem).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);

//! Criterion bench for the Table V kernel: one cost/performance row
//! (the full sweep is the harness binary's job).

use criterion::{criterion_group, criterion_main, Criterion};
use karma_dist::cost_perf_table;
use karma_graph::MemoryParams;
use karma_zoo::{resnet, CAL_RESNET200};

fn bench_table5(c: &mut Criterion) {
    let g = resnet::resnet200();
    let mem = MemoryParams::calibrated(CAL_RESNET200);
    let mut group = c.benchmark_group("table5_cost_perf");
    group.sample_size(10);
    group.bench_function("resnet200_two_steps", |b| {
        b.iter(|| cost_perf_table(&g, 4, 100, &[1, 2], &mem))
    });
    group.finish();
}

criterion_group!(benches, bench_table5);
criterion_main!(benches);

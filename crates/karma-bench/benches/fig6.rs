//! Criterion bench for the Fig. 6 kernel: stall-profile extraction from a
//! single ResNet-200 baseline trace (the four-method figure is the harness
//! binary's job).

use criterion::{criterion_group, criterion_main, Criterion};
use karma_baselines::{run_baseline, Baseline};
use karma_hw::NodeSpec;
use karma_zoo::fig5_workloads;

fn bench_fig6(c: &mut Criterion) {
    let w = fig5_workloads()
        .into_iter()
        .find(|w| w.model.name == "ResNet-200")
        .unwrap();
    let node = NodeSpec::abci();
    let mut group = c.benchmark_group("fig6_stall_profiles");
    group.sample_size(10);
    group.bench_function("superneurons_trace_and_stalls", |b| {
        b.iter(|| {
            let r = run_baseline(Baseline::SuperNeurons, &w.model, 12, &node, &w.mem).unwrap();
            r.trace.compute_spans_with_stalls().len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);

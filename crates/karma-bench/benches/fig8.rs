//! Criterion bench for the Fig. 8 kernel: the hybrid analytic model and
//! one distributed KARMA plan at 2,048 GPUs (smallest Megatron config to
//! keep iterations cheap; the full figure is the harness binary's job).

use criterion::{criterion_group, criterion_main, Criterion};
use karma_dist::{hybrid_iter_time, karma_dp_iteration, DistOptions, HybridConfig};
use karma_graph::MemoryParams;
use karma_hw::ClusterSpec;
use karma_zoo::transformer::{megatron, megatron_table4};

fn bench_fig8(c: &mut Criterion) {
    let cfg = megatron_table4()[0];
    let g = megatron(&cfg);
    let mem = MemoryParams::default();
    let cluster = ClusterSpec::abci_with_gpus(2048);
    let mut group = c.benchmark_group("fig8_scaling");
    group.sample_size(10);
    group.bench_function("hybrid_2048", |b| {
        let hc = HybridConfig::megatron(cfg.model_parallel, false);
        b.iter(|| hybrid_iter_time(&g, &hc, &cluster, 2048))
    });
    group.bench_function("karma_dp_2048", |b| {
        b.iter(|| karma_dp_iteration(&g, 1, &cluster, &mem, &DistOptions::default()))
    });
    group.finish();
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);

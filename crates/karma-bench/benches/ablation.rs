//! Criterion bench for the ablation kernels (X1 strategy / X2 solver).

use criterion::{criterion_group, criterion_main, Criterion};
use karma_bench::ablation;
use karma_graph::MemoryParams;
use karma_zoo::{resnet, CAL_RESNET50};

fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);
    group.bench_function("x1_strategy_wrn", |b| {
        b.iter(|| ablation::strategy_ablation("WRN-28-10"))
    });
    group.bench_function("x2_solver_resnet50", |b| {
        let g = resnet::resnet50();
        let mem = MemoryParams::calibrated(CAL_RESNET50);
        b.iter(|| ablation::solver_ablation(&g, 256, &mem))
    });
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);

//! Criterion bench for the Table IV kernel: the hybrid cost model plus
//! one distributed KARMA iteration plan (row 1 — the full table is the
//! harness binary's job).

use criterion::{criterion_group, criterion_main, Criterion};
use karma_dist::{hybrid_iter_time, karma_dp_iteration, DistOptions, HybridConfig};
use karma_graph::MemoryParams;
use karma_hw::ClusterSpec;
use karma_zoo::transformer::{megatron, megatron_table4};

fn bench_table4(c: &mut Criterion) {
    let cfg = megatron_table4()[0]; // 0.7B row
    let g = megatron(&cfg);
    let mem = MemoryParams::default();
    let mut group = c.benchmark_group("table4_megatron");
    group.sample_size(10);
    group.bench_function("hybrid_row1", |b| {
        let cluster = ClusterSpec::abci_with_gpus(cfg.hybrid_gpus);
        let hc = HybridConfig::megatron(cfg.model_parallel, false);
        b.iter(|| hybrid_iter_time(&g, &hc, &cluster, cfg.hybrid_gpus))
    });
    group.bench_function("karma_dp_row1", |b| {
        let cluster = ClusterSpec::abci_with_gpus(cfg.karma_gpus);
        b.iter(|| karma_dp_iteration(&g, 16, &cluster, &mem, &DistOptions::default()))
    });
    group.finish();
}

criterion_group!(benches, bench_table4);
criterion_main!(benches);

//! Criterion bench for the Fig. 7 kernel: the two-tier blocking
//! optimization for ResNet-50 at batch 512.

use criterion::{criterion_group, criterion_main, Criterion};
use karma_bench::fig7;

fn bench_fig7(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_blocking");
    group.sample_size(10);
    group.bench_function("resnet50_b512_blocking", |b| b.iter(fig7::blocking));
    group.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);

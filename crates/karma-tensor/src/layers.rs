//! Layers as pure functions over explicit saved inputs.
//!
//! `forward(&self, x)` and `backward(&self, x, dy)` never mutate the layer
//! and never stash hidden state: the *caller* owns the saved activation
//! `x`. That inversion is what makes out-of-core execution trivially
//! correct — whether `x` stayed on the device, round-tripped through far
//! memory or was recomputed, `backward` sees identical bits and produces
//! identical gradients.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::tensor::Tensor;

/// Gradient of one layer's parameters (empty for stateless layers).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ParamGrads {
    /// One tensor per parameter, in the layer's parameter order.
    pub grads: Vec<Tensor>,
}

/// A neural-network layer with pure forward/backward.
pub trait Layer: Send + Sync {
    /// Output of the layer for input `x`.
    fn forward(&self, x: &Tensor) -> Tensor;
    /// Input gradient and parameter gradients, given the *saved input* `x`
    /// and the output gradient `dy`.
    fn backward(&self, x: &Tensor, dy: &Tensor) -> (Tensor, ParamGrads);
    /// Parameters (possibly empty).
    fn params(&self) -> Vec<&Tensor>;
    /// Mutable view of the same parameters, in the same order — the
    /// checkpoint-restore path writes saved values straight back instead
    /// of synthesizing an update (adding a delta would reassociate floats
    /// and break bitwise resume). Stateless layers keep the empty default.
    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        Vec::new()
    }
    /// Apply `w += alpha * g` to every parameter (SGD steps use negative
    /// alpha; the allreduce path uses it to install averaged gradients).
    fn update(&mut self, grads: &ParamGrads, alpha: f32);
    /// A short display name.
    fn name(&self) -> &'static str;
}

/// Fully connected layer: `y = x W + b` with `W: (in × out)`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dense {
    /// Weights `(in × out)`.
    pub w: Tensor,
    /// Bias `(out)`.
    pub b: Tensor,
}

impl Dense {
    /// Xavier-ish deterministic init.
    pub fn new(inputs: usize, outputs: usize, seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let scale = (2.0 / inputs as f32).sqrt();
        let w = Tensor::from_vec(
            &[inputs, outputs],
            (0..inputs * outputs)
                .map(|_| (rng.gen::<f32>() - 0.5) * 2.0 * scale)
                .collect(),
        );
        Dense {
            w,
            b: Tensor::zeros(&[outputs]),
        }
    }
}

impl Layer for Dense {
    fn forward(&self, x: &Tensor) -> Tensor {
        let batch = x.shape[0];
        let flat = x.clone().reshape(&[batch, x.len() / batch]);
        let mut y = flat.matmul(&self.w);
        let out = self.b.len();
        for row in y.data.chunks_mut(out) {
            for (v, b) in row.iter_mut().zip(&self.b.data) {
                *v += b;
            }
        }
        y
    }

    fn backward(&self, x: &Tensor, dy: &Tensor) -> (Tensor, ParamGrads) {
        let batch = x.shape[0];
        let flat = x.clone().reshape(&[batch, x.len() / batch]);
        let dw = flat.transpose().matmul(dy);
        let out = dy.shape[1];
        let mut db = Tensor::zeros(&[out]);
        for row in dy.data.chunks(out) {
            for (g, v) in db.data.iter_mut().zip(row) {
                *g += v;
            }
        }
        let dx = dy.matmul(&self.w.transpose()).reshape(&x.shape);
        (
            dx,
            ParamGrads {
                grads: vec![dw, db],
            },
        )
    }

    fn params(&self) -> Vec<&Tensor> {
        vec![&self.w, &self.b]
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.w, &mut self.b]
    }

    fn update(&mut self, grads: &ParamGrads, alpha: f32) {
        self.w.axpy(alpha, &grads.grads[0]);
        self.b.axpy(alpha, &grads.grads[1]);
    }

    fn name(&self) -> &'static str {
        "dense"
    }
}

/// 2-D convolution (square kernel, same dtype conventions as the planner's
/// cost model). Input `[batch, in_ch, h, w]`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Conv2d {
    /// Kernels `[out_ch, in_ch, k, k]` flattened row-major.
    pub w: Tensor,
    /// Bias `(out_ch)`.
    pub b: Tensor,
    /// Input channels.
    pub in_ch: usize,
    /// Output channels.
    pub out_ch: usize,
    /// Kernel size.
    pub k: usize,
    /// Stride.
    pub stride: usize,
    /// Zero padding.
    pub pad: usize,
}

impl Conv2d {
    /// Deterministic He-init convolution.
    pub fn new(
        in_ch: usize,
        out_ch: usize,
        k: usize,
        stride: usize,
        pad: usize,
        seed: u64,
    ) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let fan_in = (in_ch * k * k) as f32;
        let scale = (2.0 / fan_in).sqrt();
        let w = Tensor::from_vec(
            &[out_ch, in_ch, k, k],
            (0..out_ch * in_ch * k * k)
                .map(|_| (rng.gen::<f32>() - 0.5) * 2.0 * scale)
                .collect(),
        );
        Conv2d {
            w,
            b: Tensor::zeros(&[out_ch]),
            in_ch,
            out_ch,
            k,
            stride,
            pad,
        }
    }

    fn out_hw(&self, h: usize, w: usize) -> (usize, usize) {
        (
            (h + 2 * self.pad - self.k) / self.stride + 1,
            (w + 2 * self.pad - self.k) / self.stride + 1,
        )
    }
}

impl Layer for Conv2d {
    fn forward(&self, x: &Tensor) -> Tensor {
        let (batch, c, h, w) = (x.shape[0], x.shape[1], x.shape[2], x.shape[3]);
        assert_eq!(c, self.in_ch);
        let (oh, ow) = self.out_hw(h, w);
        let mut out = vec![0.0f32; batch * self.out_ch * oh * ow];
        let plane = oh * ow;
        out.par_chunks_mut(self.out_ch * plane)
            .enumerate()
            .for_each(|(n, chunk)| {
                let xin = &x.data[n * c * h * w..(n + 1) * c * h * w];
                for oc in 0..self.out_ch {
                    for oy in 0..oh {
                        for ox in 0..ow {
                            let mut acc = self.b.data[oc];
                            for ic in 0..c {
                                for ky in 0..self.k {
                                    let iy = oy * self.stride + ky;
                                    if iy < self.pad || iy >= h + self.pad {
                                        continue;
                                    }
                                    let iy = iy - self.pad;
                                    for kx in 0..self.k {
                                        let ix = ox * self.stride + kx;
                                        if ix < self.pad || ix >= w + self.pad {
                                            continue;
                                        }
                                        let ix = ix - self.pad;
                                        acc += xin[ic * h * w + iy * w + ix]
                                            * self.w.data
                                                [((oc * c + ic) * self.k + ky) * self.k + kx];
                                    }
                                }
                            }
                            chunk[oc * plane + oy * ow + ox] = acc;
                        }
                    }
                }
            });
        Tensor::from_vec(&[batch, self.out_ch, oh, ow], out)
    }

    fn backward(&self, x: &Tensor, dy: &Tensor) -> (Tensor, ParamGrads) {
        let (batch, c, h, w) = (x.shape[0], x.shape[1], x.shape[2], x.shape[3]);
        let (oh, ow) = self.out_hw(h, w);
        assert_eq!(dy.shape, vec![batch, self.out_ch, oh, ow]);
        let mut dx = vec![0.0f32; x.len()];
        let mut dw = vec![0.0f32; self.w.len()];
        let mut db = vec![0.0f32; self.out_ch];
        // Deterministic sequential accumulation keeps gradients bit-stable
        // across runs (a requirement for the OOC parity checks).
        for n in 0..batch {
            let xin = &x.data[n * c * h * w..(n + 1) * c * h * w];
            let dxn = &mut dx[n * c * h * w..(n + 1) * c * h * w];
            let dyn_ = &dy.data[n * self.out_ch * oh * ow..(n + 1) * self.out_ch * oh * ow];
            for oc in 0..self.out_ch {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let g = dyn_[oc * oh * ow + oy * ow + ox];
                        if g == 0.0 {
                            continue;
                        }
                        db[oc] += g;
                        for ic in 0..c {
                            for ky in 0..self.k {
                                let iy = oy * self.stride + ky;
                                if iy < self.pad || iy >= h + self.pad {
                                    continue;
                                }
                                let iy = iy - self.pad;
                                for kx in 0..self.k {
                                    let ix = ox * self.stride + kx;
                                    if ix < self.pad || ix >= w + self.pad {
                                        continue;
                                    }
                                    let ix = ix - self.pad;
                                    let wi = ((oc * c + ic) * self.k + ky) * self.k + kx;
                                    dw[wi] += g * xin[ic * h * w + iy * w + ix];
                                    dxn[ic * h * w + iy * w + ix] += g * self.w.data[wi];
                                }
                            }
                        }
                    }
                }
            }
        }
        (
            Tensor::from_vec(&x.shape, dx),
            ParamGrads {
                grads: vec![
                    Tensor::from_vec(&self.w.shape, dw),
                    Tensor::from_vec(&[self.out_ch], db),
                ],
            },
        )
    }

    fn params(&self) -> Vec<&Tensor> {
        vec![&self.w, &self.b]
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.w, &mut self.b]
    }

    fn update(&mut self, grads: &ParamGrads, alpha: f32) {
        self.w.axpy(alpha, &grads.grads[0]);
        self.b.axpy(alpha, &grads.grads[1]);
    }

    fn name(&self) -> &'static str {
        "conv2d"
    }
}

/// Rectified linear unit.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ReLU;

impl Layer for ReLU {
    fn forward(&self, x: &Tensor) -> Tensor {
        Tensor::from_vec(&x.shape, x.data.iter().map(|&v| v.max(0.0)).collect())
    }

    fn backward(&self, x: &Tensor, dy: &Tensor) -> (Tensor, ParamGrads) {
        let data = x
            .data
            .iter()
            .zip(&dy.data)
            .map(|(&xv, &g)| if xv > 0.0 { g } else { 0.0 })
            .collect();
        (Tensor::from_vec(&x.shape, data), ParamGrads::default())
    }

    fn params(&self) -> Vec<&Tensor> {
        Vec::new()
    }

    fn update(&mut self, _grads: &ParamGrads, _alpha: f32) {}

    fn name(&self) -> &'static str {
        "relu"
    }
}

/// Max pooling over `k × k` windows with stride `k`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MaxPool2d {
    /// Window size (== stride).
    pub k: usize,
}

impl Layer for MaxPool2d {
    fn forward(&self, x: &Tensor) -> Tensor {
        let (batch, c, h, w) = (x.shape[0], x.shape[1], x.shape[2], x.shape[3]);
        let (oh, ow) = (h / self.k, w / self.k);
        let mut out = vec![f32::NEG_INFINITY; batch * c * oh * ow];
        for n in 0..batch {
            for ch in 0..c {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut m = f32::NEG_INFINITY;
                        for ky in 0..self.k {
                            for kx in 0..self.k {
                                let v = x.data
                                    [((n * c + ch) * h + oy * self.k + ky) * w + ox * self.k + kx];
                                m = m.max(v);
                            }
                        }
                        out[((n * c + ch) * oh + oy) * ow + ox] = m;
                    }
                }
            }
        }
        Tensor::from_vec(&[batch, c, oh, ow], out)
    }

    fn backward(&self, x: &Tensor, dy: &Tensor) -> (Tensor, ParamGrads) {
        let (batch, c, h, w) = (x.shape[0], x.shape[1], x.shape[2], x.shape[3]);
        let (oh, ow) = (h / self.k, w / self.k);
        let mut dx = vec![0.0f32; x.len()];
        for n in 0..batch {
            for ch in 0..c {
                for oy in 0..oh {
                    for ox in 0..ow {
                        // Recompute the argmax (first maximum wins).
                        let mut best = f32::NEG_INFINITY;
                        let mut bi = 0;
                        for ky in 0..self.k {
                            for kx in 0..self.k {
                                let idx =
                                    ((n * c + ch) * h + oy * self.k + ky) * w + ox * self.k + kx;
                                if x.data[idx] > best {
                                    best = x.data[idx];
                                    bi = idx;
                                }
                            }
                        }
                        dx[bi] += dy.data[((n * c + ch) * oh + oy) * ow + ox];
                    }
                }
            }
        }
        (Tensor::from_vec(&x.shape, dx), ParamGrads::default())
    }

    fn params(&self) -> Vec<&Tensor> {
        Vec::new()
    }

    fn update(&mut self, _grads: &ParamGrads, _alpha: f32) {}

    fn name(&self) -> &'static str {
        "maxpool"
    }
}

/// Flatten `[batch, ...]` to `[batch, features]`.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Flatten;

impl Layer for Flatten {
    fn forward(&self, x: &Tensor) -> Tensor {
        let batch = x.shape[0];
        x.clone().reshape(&[batch, x.len() / batch])
    }

    fn backward(&self, x: &Tensor, dy: &Tensor) -> (Tensor, ParamGrads) {
        (dy.clone().reshape(&x.shape), ParamGrads::default())
    }

    fn params(&self) -> Vec<&Tensor> {
        Vec::new()
    }

    fn update(&mut self, _grads: &ParamGrads, _alpha: f32) {}

    fn name(&self) -> &'static str {
        "flatten"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Finite-difference check of input gradients for a layer.
    fn check_input_grad<L: Layer>(layer: &L, x: &Tensor, eps: f32, tol: f32) {
        let y = layer.forward(x);
        // Loss = sum(y) -> dy = ones.
        let dy = Tensor::from_vec(&y.shape, vec![1.0; y.len()]);
        let (dx, _) = layer.backward(x, &dy);
        for i in (0..x.len()).step_by((x.len() / 7).max(1)) {
            let mut xp = x.clone();
            xp.data[i] += eps;
            let mut xm = x.clone();
            xm.data[i] -= eps;
            let num = (layer.forward(&xp).sum() - layer.forward(&xm).sum()) / (2.0 * eps);
            assert!(
                (num - dx.data[i]).abs() < tol,
                "{}: grad[{i}] numeric {num} vs analytic {}",
                layer.name(),
                dx.data[i]
            );
        }
    }

    fn sample_input(shape: &[usize], seed: u64) -> Tensor {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        Tensor::from_vec(
            shape,
            (0..shape.iter().product())
                .map(|_| rng.gen::<f32>() * 2.0 - 1.0)
                .collect(),
        )
    }

    #[test]
    fn dense_gradients_match_finite_differences() {
        let l = Dense::new(6, 4, 1);
        let x = sample_input(&[3, 6], 2);
        check_input_grad(&l, &x, 1e-3, 1e-2);
        // Weight gradient check on one entry.
        let dy = Tensor::from_vec(&[3, 4], vec![1.0; 12]);
        let (_, g) = l.backward(&x, &dy);
        let eps = 1e-3;
        let mut lp = l.clone();
        lp.w.data[5] += eps;
        let mut lm = l.clone();
        lm.w.data[5] -= eps;
        let num = (lp.forward(&x).sum() - lm.forward(&x).sum()) / (2.0 * eps);
        assert!((num - g.grads[0].data[5]).abs() < 1e-2);
    }

    #[test]
    fn conv_gradients_match_finite_differences() {
        let l = Conv2d::new(2, 3, 3, 1, 1, 7);
        let x = sample_input(&[2, 2, 5, 5], 3);
        check_input_grad(&l, &x, 1e-3, 2e-2);
    }

    #[test]
    fn conv_strided_padded_shapes() {
        let l = Conv2d::new(3, 8, 3, 2, 1, 1);
        let x = sample_input(&[1, 3, 8, 8], 4);
        let y = l.forward(&x);
        assert_eq!(y.shape, vec![1, 8, 4, 4]);
    }

    #[test]
    fn relu_gradients() {
        let l = ReLU;
        let x = sample_input(&[4, 10], 5);
        check_input_grad(&l, &x, 1e-3, 1e-3);
    }

    #[test]
    fn maxpool_routes_gradient_to_argmax() {
        let l = MaxPool2d { k: 2 };
        let x = Tensor::from_vec(&[1, 1, 2, 2], vec![1.0, 5.0, 3.0, 2.0]);
        let y = l.forward(&x);
        assert_eq!(y.data, vec![5.0]);
        let (dx, _) = l.backward(&x, &Tensor::from_vec(&[1, 1, 1, 1], vec![2.0]));
        assert_eq!(dx.data, vec![0.0, 2.0, 0.0, 0.0]);
    }

    #[test]
    fn flatten_round_trips_shape() {
        let l = Flatten;
        let x = sample_input(&[2, 3, 4, 4], 6);
        let y = l.forward(&x);
        assert_eq!(y.shape, vec![2, 48]);
        let (dx, _) = l.backward(&x, &y);
        assert_eq!(dx.shape, x.shape);
    }

    #[test]
    fn update_moves_parameters() {
        let mut l = Dense::new(3, 2, 9);
        let before = l.w.data.clone();
        let g = ParamGrads {
            grads: vec![
                Tensor::from_vec(&[3, 2], vec![1.0; 6]),
                Tensor::from_vec(&[2], vec![1.0; 2]),
            ],
        };
        l.update(&g, -0.5);
        for (b, a) in before.iter().zip(&l.w.data) {
            assert!((b - 0.5 - a).abs() < 1e-6);
        }
    }
}

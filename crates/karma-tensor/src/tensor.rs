//! Dense f32 tensors.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// A dense row-major f32 tensor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    /// Dimensions, outermost first (e.g. `[batch, ch, h, w]`).
    pub shape: Vec<usize>,
    /// Row-major data; `len == shape.product()`.
    pub data: Vec<f32>,
}

impl Tensor {
    /// Zero-filled tensor.
    pub fn zeros(shape: &[usize]) -> Self {
        Tensor {
            shape: shape.to_vec(),
            data: vec![0.0; shape.iter().product()],
        }
    }

    /// Build from parts, checking the element count.
    pub fn from_vec(shape: &[usize], data: Vec<f32>) -> Self {
        assert_eq!(
            shape.iter().product::<usize>(),
            data.len(),
            "shape {shape:?} does not match {} elements",
            data.len()
        );
        Tensor {
            shape: shape.to_vec(),
            data,
        }
    }

    /// Element count.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Bytes occupied by the data buffer.
    #[inline]
    pub fn bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }

    /// Reshape in place (element count must match).
    pub fn reshape(mut self, shape: &[usize]) -> Self {
        assert_eq!(
            self.len(),
            shape.iter().product::<usize>(),
            "cannot reshape {:?} to {shape:?}",
            self.shape
        );
        self.shape = shape.to_vec();
        self
    }

    /// Matrix product: `self` is `(m × k)`, `rhs` is `(k × n)`; result is
    /// `(m × n)`. Rows are computed in parallel with rayon.
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.shape.len(), 2, "lhs must be 2-D");
        assert_eq!(rhs.shape.len(), 2, "rhs must be 2-D");
        let (m, k) = (self.shape[0], self.shape[1]);
        let (k2, n) = (rhs.shape[0], rhs.shape[1]);
        assert_eq!(k, k2, "inner dims {k} vs {k2}");
        let mut out = vec![0.0f32; m * n];
        out.par_chunks_mut(n).enumerate().for_each(|(i, row)| {
            let a = &self.data[i * k..(i + 1) * k];
            for (kk, &av) in a.iter().enumerate() {
                if av != 0.0 {
                    let b = &rhs.data[kk * n..(kk + 1) * n];
                    for (rv, &bv) in row.iter_mut().zip(b) {
                        *rv += av * bv;
                    }
                }
            }
        });
        Tensor::from_vec(&[m, n], out)
    }

    /// Transposed view materialized (2-D only).
    pub fn transpose(&self) -> Tensor {
        assert_eq!(self.shape.len(), 2);
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Tensor::from_vec(&[n, m], out)
    }

    /// Element-wise `self + rhs` (same shape).
    pub fn add(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.shape, rhs.shape);
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a + b)
            .collect();
        Tensor::from_vec(&self.shape, data)
    }

    /// In-place AXPY: `self += alpha * rhs`.
    pub fn axpy(&mut self, alpha: f32, rhs: &Tensor) {
        assert_eq!(self.shape, rhs.shape);
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += alpha * b;
        }
    }

    /// Scale in place.
    pub fn scale(&mut self, s: f32) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Index of the maximum element in each row of a 2-D tensor.
    pub fn argmax_rows(&self) -> Vec<usize> {
        assert_eq!(self.shape.len(), 2);
        let n = self.shape[1];
        self.data
            .chunks(n)
            .map(|row| {
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Tensor::from_vec(&[2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(&[3, 2], vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.shape, vec![2, 2]);
        assert_eq!(c.data, vec![58., 64., 139., 154.]);
    }

    #[test]
    fn transpose_round_trips() {
        let a = Tensor::from_vec(&[2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let t = a.transpose();
        assert_eq!(t.shape, vec![3, 2]);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn matmul_transpose_identity() {
        // (A B)^T == B^T A^T
        let a = Tensor::from_vec(&[2, 3], vec![1., -2., 3., 0.5, 5., -6.]);
        let b = Tensor::from_vec(&[3, 4], (0..12).map(|i| i as f32 * 0.25).collect());
        let left = a.matmul(&b).transpose();
        let right = b.transpose().matmul(&a.transpose());
        for (l, r) in left.data.iter().zip(&right.data) {
            assert!((l - r).abs() < 1e-5);
        }
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = Tensor::from_vec(&[3], vec![1., 2., 3.]);
        let b = Tensor::from_vec(&[3], vec![10., 20., 30.]);
        a.axpy(0.1, &b);
        assert_eq!(a.data, vec![2., 4., 6.]);
        a.scale(0.5);
        assert_eq!(a.data, vec![1., 2., 3.]);
    }

    #[test]
    fn argmax_rows_picks_winners() {
        let a = Tensor::from_vec(&[2, 3], vec![0.1, 0.9, 0.0, 0.3, 0.2, 0.5]);
        assert_eq!(a.argmax_rows(), vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_vec_checks_length() {
        Tensor::from_vec(&[2, 2], vec![1.0; 3]);
    }

    #[test]
    fn bytes_counts_f32s() {
        assert_eq!(Tensor::zeros(&[4, 4]).bytes(), 64);
    }
}

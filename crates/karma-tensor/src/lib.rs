//! Real-execution substrate for the KARMA reproduction.
//!
//! The paper validates correctness by training to convergence and comparing
//! accuracy (Sec. IV-D): out-of-core execution must not change the
//! computation. This crate provides exactly enough of a deep-learning stack
//! to replay that validation **for real** on the CPU:
//!
//! * [`tensor::Tensor`] — dense f32 tensors with rayon-parallel matmul;
//! * [`layers`] — layers as **pure functions**: `forward(x)` and
//!   `backward(x, dy)` take the saved input explicitly, so an out-of-core
//!   runtime (`karma-runtime`) can keep, move, drop or recompute saved
//!   activations freely and the arithmetic is bit-identical either way;
//! * [`net::Sequential`] — a layer stack with a plain in-core training
//!   step, the reference against which OOC execution is compared;
//! * [`data`] — seeded synthetic classification datasets sized like the
//!   paper's workloads.
//!
//! **Workspace position:** a leaf crate (no `karma-*` dependencies);
//! `karma-runtime` builds the real out-of-core executor on top of it.

pub mod data;
pub mod layers;
pub mod net;
pub mod norm;
pub mod tensor;

pub use data::SyntheticDataset;
pub use layers::{Conv2d, Dense, Flatten, Layer, MaxPool2d, ReLU};
pub use net::{conv_stack, mlp_stack, small_cnn, small_resnet_style, Gradients, Sequential};
pub use norm::{BatchNorm2d, GlobalAvgPool};
pub use tensor::Tensor;

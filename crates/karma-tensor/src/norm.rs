//! Normalization and pooling layers (pure-function style, like `layers`).

use serde::{Deserialize, Serialize};

use crate::layers::{Layer, ParamGrads};
use crate::tensor::Tensor;

/// Batch normalization over `[batch, ch, h, w]` with per-channel affine
/// parameters, using *batch statistics* in both forward and backward (the
/// training-mode behaviour the paper's cost model counts in Sec. III-C.4).
///
/// Statistics are recomputed from the saved input in backward, so the
/// layer stays pure and out-of-core recompute reproduces identical bits.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BatchNorm2d {
    /// Per-channel scale (γ).
    pub gamma: Tensor,
    /// Per-channel shift (β).
    pub beta: Tensor,
    /// Numerical stabilizer.
    pub eps: f32,
}

impl BatchNorm2d {
    /// Identity-initialized batch norm over `ch` channels.
    pub fn new(ch: usize) -> Self {
        BatchNorm2d {
            gamma: Tensor::from_vec(&[ch], vec![1.0; ch]),
            beta: Tensor::zeros(&[ch]),
            eps: 1e-5,
        }
    }

    /// Per-channel mean and variance of `x`.
    fn stats(&self, x: &Tensor) -> (Vec<f32>, Vec<f32>) {
        let (b, c, h, w) = (x.shape[0], x.shape[1], x.shape[2], x.shape[3]);
        let m = (b * h * w) as f32;
        let mut mean = vec![0.0f32; c];
        let mut var = vec![0.0f32; c];
        for n in 0..b {
            for (ch, m) in mean.iter_mut().enumerate() {
                for i in 0..h * w {
                    *m += x.data[(n * c + ch) * h * w + i];
                }
            }
        }
        for v in &mut mean {
            *v /= m;
        }
        for n in 0..b {
            for ch in 0..c {
                for i in 0..h * w {
                    let d = x.data[(n * c + ch) * h * w + i] - mean[ch];
                    var[ch] += d * d;
                }
            }
        }
        for v in &mut var {
            *v /= m;
        }
        (mean, var)
    }
}

impl Layer for BatchNorm2d {
    fn forward(&self, x: &Tensor) -> Tensor {
        let (b, c, h, w) = (x.shape[0], x.shape[1], x.shape[2], x.shape[3]);
        let (mean, var) = self.stats(x);
        let mut out = vec![0.0f32; x.len()];
        for n in 0..b {
            for ch in 0..c {
                let inv = 1.0 / (var[ch] + self.eps).sqrt();
                for i in 0..h * w {
                    let idx = (n * c + ch) * h * w + i;
                    out[idx] =
                        (x.data[idx] - mean[ch]) * inv * self.gamma.data[ch] + self.beta.data[ch];
                }
            }
        }
        Tensor::from_vec(&x.shape, out)
    }

    fn backward(&self, x: &Tensor, dy: &Tensor) -> (Tensor, ParamGrads) {
        let (b, c, h, w) = (x.shape[0], x.shape[1], x.shape[2], x.shape[3]);
        let m = (b * h * w) as f32;
        let (mean, var) = self.stats(x);
        let mut dgamma = vec![0.0f32; c];
        let mut dbeta = vec![0.0f32; c];
        let mut sum_dy = vec![0.0f32; c];
        let mut sum_dy_xhat = vec![0.0f32; c];
        let plane = h * w;
        for n in 0..b {
            for ch in 0..c {
                let inv = 1.0 / (var[ch] + self.eps).sqrt();
                for i in 0..plane {
                    let idx = (n * c + ch) * plane + i;
                    let xhat = (x.data[idx] - mean[ch]) * inv;
                    dgamma[ch] += dy.data[idx] * xhat;
                    dbeta[ch] += dy.data[idx];
                    sum_dy[ch] += dy.data[idx];
                    sum_dy_xhat[ch] += dy.data[idx] * xhat;
                }
            }
        }
        // Standard batch-norm input gradient:
        // dx = γ·inv/m · (m·dy − Σdy − x̂·Σ(dy·x̂))
        let mut dx = vec![0.0f32; x.len()];
        for n in 0..b {
            for ch in 0..c {
                let inv = 1.0 / (var[ch] + self.eps).sqrt();
                for i in 0..plane {
                    let idx = (n * c + ch) * plane + i;
                    let xhat = (x.data[idx] - mean[ch]) * inv;
                    dx[idx] = self.gamma.data[ch] * inv / m
                        * (m * dy.data[idx] - sum_dy[ch] - xhat * sum_dy_xhat[ch]);
                }
            }
        }
        (
            Tensor::from_vec(&x.shape, dx),
            ParamGrads {
                grads: vec![
                    Tensor::from_vec(&[c], dgamma),
                    Tensor::from_vec(&[c], dbeta),
                ],
            },
        )
    }

    fn params(&self) -> Vec<&Tensor> {
        vec![&self.gamma, &self.beta]
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.gamma, &mut self.beta]
    }

    fn update(&mut self, grads: &ParamGrads, alpha: f32) {
        self.gamma.axpy(alpha, &grads.grads[0]);
        self.beta.axpy(alpha, &grads.grads[1]);
    }

    fn name(&self) -> &'static str {
        "batchnorm"
    }
}

/// Global average pooling: `[batch, ch, h, w]` → `[batch, ch]`.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct GlobalAvgPool;

impl Layer for GlobalAvgPool {
    fn forward(&self, x: &Tensor) -> Tensor {
        let (b, c, h, w) = (x.shape[0], x.shape[1], x.shape[2], x.shape[3]);
        let plane = (h * w) as f32;
        let mut out = vec![0.0f32; b * c];
        for n in 0..b {
            for ch in 0..c {
                let s: f32 = x.data[(n * c + ch) * h * w..(n * c + ch + 1) * h * w]
                    .iter()
                    .sum();
                out[n * c + ch] = s / plane;
            }
        }
        Tensor::from_vec(&[b, c], out)
    }

    fn backward(&self, x: &Tensor, dy: &Tensor) -> (Tensor, ParamGrads) {
        let (b, c, h, w) = (x.shape[0], x.shape[1], x.shape[2], x.shape[3]);
        let plane = (h * w) as f32;
        let mut dx = vec![0.0f32; x.len()];
        for n in 0..b {
            for ch in 0..c {
                let g = dy.data[n * c + ch] / plane;
                for i in 0..h * w {
                    dx[(n * c + ch) * h * w + i] = g;
                }
            }
        }
        (Tensor::from_vec(&x.shape, dx), ParamGrads::default())
    }

    fn params(&self) -> Vec<&Tensor> {
        Vec::new()
    }

    fn update(&mut self, _grads: &ParamGrads, _alpha: f32) {}

    fn name(&self) -> &'static str {
        "gap"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn sample(shape: &[usize], seed: u64) -> Tensor {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        Tensor::from_vec(
            shape,
            (0..shape.iter().product())
                .map(|_| rng.gen::<f32>() * 2.0 - 1.0)
                .collect(),
        )
    }

    #[test]
    fn batchnorm_normalizes_per_channel() {
        let bn = BatchNorm2d::new(3);
        let x = sample(&[4, 3, 5, 5], 1);
        let y = bn.forward(&x);
        // With identity affine, each channel of y has ~zero mean, ~unit var.
        let (mean, var) = bn.stats(&y);
        for ch in 0..3 {
            assert!(mean[ch].abs() < 1e-5, "mean {}", mean[ch]);
            assert!((var[ch] - 1.0).abs() < 1e-3, "var {}", var[ch]);
        }
    }

    #[test]
    fn batchnorm_input_gradient_matches_finite_differences() {
        let bn = BatchNorm2d::new(2);
        let x = sample(&[2, 2, 3, 3], 2);
        let dy = sample(&[2, 2, 3, 3], 3);
        let (dx, _) = bn.backward(&x, &dy);
        let eps = 1e-3;
        for i in (0..x.len()).step_by(7) {
            let mut xp = x.clone();
            xp.data[i] += eps;
            let mut xm = x.clone();
            xm.data[i] -= eps;
            let loss = |t: &Tensor| -> f32 {
                bn.forward(t)
                    .data
                    .iter()
                    .zip(&dy.data)
                    .map(|(a, b)| a * b)
                    .sum()
            };
            let num = (loss(&xp) - loss(&xm)) / (2.0 * eps);
            assert!(
                (num - dx.data[i]).abs() < 2e-2,
                "grad[{i}]: numeric {num} vs analytic {}",
                dx.data[i]
            );
        }
    }

    #[test]
    fn batchnorm_param_gradients_match_finite_differences() {
        let bn = BatchNorm2d::new(2);
        let x = sample(&[2, 2, 3, 3], 4);
        let dy = Tensor::from_vec(&x.shape, vec![1.0; x.len()]);
        let (_, g) = bn.backward(&x, &dy);
        let eps = 1e-3;
        for ch in 0..2 {
            let mut bp = bn.clone();
            bp.gamma.data[ch] += eps;
            let mut bm = bn.clone();
            bm.gamma.data[ch] -= eps;
            let num = (bp.forward(&x).sum() - bm.forward(&x).sum()) / (2.0 * eps);
            assert!((num - g.grads[0].data[ch]).abs() < 1e-2);
        }
    }

    #[test]
    fn gap_averages_and_spreads_gradient() {
        let x = Tensor::from_vec(&[1, 1, 2, 2], vec![1.0, 2.0, 3.0, 6.0]);
        let gap = GlobalAvgPool;
        let y = gap.forward(&x);
        assert_eq!(y.shape, vec![1, 1]);
        assert!((y.data[0] - 3.0).abs() < 1e-6);
        let (dx, _) = gap.backward(&x, &Tensor::from_vec(&[1, 1], vec![4.0]));
        assert!(dx.data.iter().all(|&v| (v - 1.0).abs() < 1e-6));
    }

    #[test]
    fn batchnorm_is_deterministic_and_pure() {
        let bn = BatchNorm2d::new(4);
        let x = sample(&[3, 4, 4, 4], 5);
        let a = bn.forward(&x);
        let b = bn.forward(&x);
        assert_eq!(a, b);
    }
}

//! Seeded synthetic datasets (the reproduction's stand-in for ImageNet /
//! CIFAR-10 / ssTEM / OpenWebText — see DESIGN.md substitutions).

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::tensor::Tensor;

/// A deterministic in-memory classification dataset: class-conditional
/// Gaussian blobs rendered as `channels × side × side` images, learnable by
/// the small CNNs used in tests and examples.
#[derive(Debug, Clone)]
pub struct SyntheticDataset {
    /// All images, `[samples, channels, side, side]`.
    pub images: Tensor,
    /// Integer labels.
    pub labels: Vec<usize>,
    /// Sample shape `(channels, side)`.
    pub channels: usize,
    /// Image side length.
    pub side: usize,
    /// Class count.
    pub classes: usize,
}

impl SyntheticDataset {
    /// Generate `samples` images of `channels × side × side` across
    /// `classes` classes with RNG `seed`.
    pub fn classification(
        samples: usize,
        channels: usize,
        side: usize,
        classes: usize,
        seed: u64,
    ) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut data = Vec::with_capacity(samples * channels * side * side);
        let mut labels = Vec::with_capacity(samples);
        for i in 0..samples {
            let class = i % classes;
            labels.push(class);
            // Class-dependent bright quadrant plus noise.
            let (qy, qx) = (class / 2 % 2, class % 2);
            for _c in 0..channels {
                for y in 0..side {
                    for x in 0..side {
                        let in_quadrant = (y * 2 / side == qy) && (x * 2 / side == qx);
                        let base = if in_quadrant { 0.8 } else { 0.1 };
                        data.push(base + rng.gen::<f32>() * 0.2);
                    }
                }
            }
        }
        SyntheticDataset {
            images: Tensor::from_vec(&[samples, channels, side, side], data),
            labels,
            channels,
            side,
            classes,
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Slice out the mini-batch starting at `start` (wraps are the
    /// caller's concern; `start + batch` must be in range).
    pub fn batch(&self, start: usize, batch: usize) -> (Tensor, Vec<usize>) {
        assert!(start + batch <= self.len(), "batch out of range");
        let stride = self.channels * self.side * self.side;
        let x = Tensor::from_vec(
            &[batch, self.channels, self.side, self.side],
            self.images.data[start * stride..(start + batch) * stride].to_vec(),
        );
        (x, self.labels[start..start + batch].to_vec())
    }

    /// Split samples across `workers` equal contiguous shards and return
    /// shard `rank` of size `per_worker` from batch window `start`.
    pub fn shard(&self, start: usize, per_worker: usize, rank: usize) -> (Tensor, Vec<usize>) {
        self.batch(start + rank * per_worker, per_worker)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = SyntheticDataset::classification(10, 1, 8, 2, 5);
        let b = SyntheticDataset::classification(10, 1, 8, 2, 5);
        assert_eq!(a.images, b.images);
        assert_eq!(a.labels, b.labels);
    }

    #[test]
    fn labels_cycle_through_classes() {
        let d = SyntheticDataset::classification(8, 1, 8, 4, 1);
        assert_eq!(d.labels, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn batch_slices_correctly() {
        let d = SyntheticDataset::classification(10, 2, 4, 2, 3);
        let (x, y) = d.batch(4, 3);
        assert_eq!(x.shape, vec![3, 2, 4, 4]);
        assert_eq!(y, vec![0, 1, 0]);
        let direct = &d.images.data[4 * 32..7 * 32];
        assert_eq!(&x.data[..], direct);
    }

    #[test]
    fn shards_partition_the_window() {
        let d = SyntheticDataset::classification(16, 1, 4, 2, 4);
        let (full, _) = d.batch(0, 8);
        let (s0, _) = d.shard(0, 4, 0);
        let (s1, _) = d.shard(0, 4, 1);
        assert_eq!(&full.data[..4 * 16], &s0.data[..]);
        assert_eq!(&full.data[4 * 16..], &s1.data[..]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn batch_bounds_checked() {
        let d = SyntheticDataset::classification(4, 1, 4, 2, 1);
        d.batch(2, 4);
    }
}

//! Sequential networks and the in-core reference training step.

use serde::{Deserialize, Serialize};

use crate::layers::{Layer, ParamGrads};
use crate::tensor::Tensor;

/// Per-layer parameter gradients for one step.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Gradients {
    /// `per_layer[i]` holds layer `i`'s parameter gradients.
    pub per_layer: Vec<ParamGrads>,
}

impl Gradients {
    /// Element-wise accumulate another worker's gradients.
    pub fn accumulate(&mut self, other: &Gradients) {
        assert_eq!(self.per_layer.len(), other.per_layer.len());
        for (a, b) in self.per_layer.iter_mut().zip(&other.per_layer) {
            for (ga, gb) in a.grads.iter_mut().zip(&b.grads) {
                ga.axpy(1.0, gb);
            }
        }
    }

    /// Scale all gradients (e.g. 1/num_workers for averaging).
    pub fn scale(&mut self, s: f32) {
        for l in &mut self.per_layer {
            for g in &mut l.grads {
                g.scale(s);
            }
        }
    }

    /// Total bytes of gradient payload (what an exchange moves).
    pub fn bytes(&self) -> usize {
        self.per_layer
            .iter()
            .flat_map(|l| l.grads.iter())
            .map(Tensor::bytes)
            .sum()
    }
}

/// A stack of layers trained with softmax cross-entropy.
pub struct Sequential {
    /// The layers in forward order.
    pub layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// Build from boxed layers.
    pub fn new(layers: Vec<Box<dyn Layer>>) -> Self {
        Sequential { layers }
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// True when the stack is empty.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Forward pass returning every layer input: `acts[i]` is the input to
    /// layer `i`, `acts[len]` is the network output (logits).
    pub fn forward_all(&self, x: &Tensor) -> Vec<Tensor> {
        let mut acts = Vec::with_capacity(self.layers.len() + 1);
        acts.push(x.clone());
        for l in &self.layers {
            let y = l.forward(acts.last().unwrap());
            acts.push(y);
        }
        acts
    }

    /// Softmax cross-entropy loss and logits gradient for integer labels.
    /// Returns `(mean loss, dlogits)`.
    pub fn softmax_xent(logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
        let batch = logits.shape[0];
        assert_eq!(batch, labels.len());
        let classes = logits.shape[1];
        let mut dl = vec![0.0f32; logits.len()];
        let mut loss = 0.0f32;
        for (n, &label) in labels.iter().enumerate() {
            let row = &logits.data[n * classes..(n + 1) * classes];
            let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let exps: Vec<f32> = row.iter().map(|v| (v - max).exp()).collect();
            let z: f32 = exps.iter().sum();
            loss -= (exps[label] / z).ln();
            for c in 0..classes {
                dl[n * classes + c] = (exps[c] / z - f32::from(c == label)) / batch as f32;
            }
        }
        (loss / batch as f32, Tensor::from_vec(&logits.shape, dl))
    }

    /// One full in-core training step (the reference the OOC runtime is
    /// compared against): forward, loss, backward, SGD update. Returns the
    /// mean loss.
    pub fn train_step(&mut self, x: &Tensor, labels: &[usize], lr: f32) -> f32 {
        let acts = self.forward_all(x);
        let (loss, mut dy) = Self::softmax_xent(acts.last().unwrap(), labels);
        let grads = self.backward_from(&acts, &mut dy);
        self.apply(&grads, lr);
        loss
    }

    /// Backward through all layers given the saved activations; consumes
    /// `dy` in place. Exposed separately so OOC runtimes can drive it
    /// block by block.
    pub fn backward_from(&self, acts: &[Tensor], dy: &mut Tensor) -> Gradients {
        let mut per_layer = vec![ParamGrads::default(); self.layers.len()];
        for (i, l) in self.layers.iter().enumerate().rev() {
            let (dx, g) = l.backward(&acts[i], dy);
            per_layer[i] = g;
            *dy = dx;
        }
        Gradients { per_layer }
    }

    /// SGD: `w -= lr * g`.
    pub fn apply(&mut self, grads: &Gradients, lr: f32) {
        for (l, g) in self.layers.iter_mut().zip(&grads.per_layer) {
            l.update(g, -lr);
        }
    }

    /// Classification accuracy on `(x, labels)`.
    pub fn accuracy(&self, x: &Tensor, labels: &[usize]) -> f64 {
        let acts = self.forward_all(x);
        let pred = acts.last().unwrap().argmax_rows();
        let hits = pred.iter().zip(labels).filter(|(p, l)| p == l).count();
        hits as f64 / labels.len() as f64
    }

    /// Flat snapshot of all parameters (for bit-parity comparisons).
    pub fn snapshot(&self) -> Vec<f32> {
        self.layers
            .iter()
            .flat_map(|l| l.params().into_iter().flat_map(|t| t.data.clone()))
            .collect()
    }

    /// Overwrite every parameter from a flat [`Sequential::snapshot`] of a
    /// same-architecture net (checkpoint restore / elastic pool growth).
    /// Values are copied verbatim — no arithmetic — so the restored net is
    /// bitwise-identical to the snapshotted one. Panics when `flat` does
    /// not have exactly one value per parameter element.
    pub fn restore(&mut self, flat: &[f32]) {
        let mut off = 0usize;
        for l in self.layers.iter_mut() {
            for t in l.params_mut() {
                let n = t.data.len();
                assert!(
                    off + n <= flat.len(),
                    "snapshot too short: architecture mismatch"
                );
                t.data.copy_from_slice(&flat[off..off + n]);
                off += n;
            }
        }
        assert_eq!(off, flat.len(), "snapshot too long: architecture mismatch");
    }
}

/// A small deterministic CNN used across tests, examples and the runtime
/// parity checks: conv-relu-pool ×2, flatten, dense.
pub fn small_cnn(classes: usize, seed: u64) -> Sequential {
    use crate::layers::{Conv2d, Dense, Flatten, MaxPool2d, ReLU};
    Sequential::new(vec![
        Box::new(Conv2d::new(1, 4, 3, 1, 1, seed)),
        Box::new(ReLU),
        Box::new(MaxPool2d { k: 2 }),
        Box::new(Conv2d::new(4, 8, 3, 1, 1, seed + 1)),
        Box::new(ReLU),
        Box::new(MaxPool2d { k: 2 }),
        Box::new(Flatten),
        Box::new(Dense::new(8 * 4 * 4, classes, seed + 2)),
    ])
}

/// A plain conv stack: `pairs` conv+ReLU pairs at constant 16×16 spatial
/// size, then flatten + FC. Deep enough that multi-layer blocks have real
/// interior activations — the substrate for out-of-core tests where swap
/// and recompute must move actual bytes (a block's boundary activation
/// always stays resident, so single-layer blocks transfer nothing).
pub fn conv_stack(pairs: usize, classes: usize, seed: u64) -> Sequential {
    use crate::layers::{Conv2d, Dense, Flatten, ReLU};
    let mut layers: Vec<Box<dyn crate::layers::Layer>> = Vec::with_capacity(2 * pairs + 2);
    let mut in_ch = 1;
    for i in 0..pairs {
        layers.push(Box::new(Conv2d::new(in_ch, 4, 3, 1, 1, seed + i as u64)));
        layers.push(Box::new(ReLU));
        in_ch = 4;
    }
    layers.push(Box::new(Flatten));
    layers.push(Box::new(Dense::new(
        4 * 16 * 16,
        classes,
        seed + pairs as u64,
    )));
    Sequential::new(layers)
}

/// A parameter-heavy MLP: flatten, then `hidden + 2` dense layers of
/// `width` units with ReLU between them. Dense weights dominate the
/// footprint (each hidden layer carries `width²` parameters against a
/// `batch × width` activation), which is the regime where ZeRO-style
/// optimizer-state partitioning frees real capacity — the executed
/// Fig. 8 comparison plans over this workload.
pub fn mlp_stack(hidden: usize, width: usize, classes: usize, seed: u64) -> Sequential {
    use crate::layers::{Dense, Flatten, ReLU};
    let mut layers: Vec<Box<dyn crate::layers::Layer>> = Vec::with_capacity(2 * hidden + 4);
    layers.push(Box::new(Flatten));
    layers.push(Box::new(Dense::new(16 * 16, width, seed)));
    layers.push(Box::new(ReLU));
    for i in 0..hidden {
        layers.push(Box::new(Dense::new(width, width, seed + 1 + i as u64)));
        layers.push(Box::new(ReLU));
    }
    layers.push(Box::new(Dense::new(
        width,
        classes,
        seed + 1 + hidden as u64,
    )));
    Sequential::new(layers)
}

/// A deeper normalized CNN (conv-BN-ReLU blocks + global average pooling)
/// exercising every real layer kind — the zoo's ResNet idiom at test scale.
pub fn small_resnet_style(classes: usize, seed: u64) -> Sequential {
    use crate::layers::{Conv2d, Dense, Flatten, ReLU};
    use crate::norm::{BatchNorm2d, GlobalAvgPool};
    Sequential::new(vec![
        Box::new(Conv2d::new(1, 8, 3, 1, 1, seed)),
        Box::new(BatchNorm2d::new(8)),
        Box::new(ReLU),
        Box::new(Conv2d::new(8, 8, 3, 2, 1, seed + 1)),
        Box::new(BatchNorm2d::new(8)),
        Box::new(ReLU),
        Box::new(Conv2d::new(8, 16, 3, 2, 1, seed + 2)),
        Box::new(BatchNorm2d::new(16)),
        Box::new(ReLU),
        Box::new(GlobalAvgPool),
        Box::new(Flatten),
        Box::new(Dense::new(16, classes, seed + 3)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::SyntheticDataset;

    #[test]
    fn softmax_xent_gradient_sums_to_zero_per_row() {
        let logits = Tensor::from_vec(&[2, 3], vec![1.0, 2.0, 3.0, 0.5, 0.5, 0.5]);
        let (loss, d) = Sequential::softmax_xent(&logits, &[2, 0]);
        assert!(loss > 0.0);
        for row in d.data.chunks(3) {
            let s: f32 = row.iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn training_reduces_loss() {
        let data = SyntheticDataset::classification(64, 1, 16, 4, 42);
        let mut net = small_cnn(4, 1);
        let (x, y) = data.batch(0, 32);
        let first = net.train_step(&x, &y, 0.05);
        let mut last = first;
        for _ in 0..30 {
            last = net.train_step(&x, &y, 0.05);
        }
        assert!(
            last < first * 0.6,
            "loss should fall: first {first}, last {last}"
        );
    }

    #[test]
    fn training_improves_accuracy_above_chance() {
        let data = SyntheticDataset::classification(128, 1, 16, 4, 7);
        let mut net = small_cnn(4, 3);
        let (x, y) = data.batch(0, 128);
        for _ in 0..40 {
            net.train_step(&x, &y, 0.05);
        }
        let acc = net.accuracy(&x, &y);
        assert!(acc > 0.5, "accuracy {acc} should beat 0.25 chance");
    }

    #[test]
    fn restore_round_trips_snapshot_bitwise() {
        let data = SyntheticDataset::classification(16, 1, 16, 4, 9);
        let mut net = small_cnn(4, 5);
        let (x, y) = data.batch(0, 16);
        net.train_step(&x, &y, 0.05);
        let trained = net.snapshot();

        // A differently-seeded same-architecture net adopts the snapshot
        // exactly, and diverged weights are fully overwritten.
        let mut other = small_cnn(4, 77);
        assert_ne!(other.snapshot(), trained);
        other.restore(&trained);
        assert_eq!(other.snapshot(), trained);

        // Every param-bearing layer kind must round trip — batch norm's
        // gamma/beta included, not just Dense/Conv2d weights.
        let bn_net = small_resnet_style(4, 5);
        let weights = bn_net.snapshot();
        let mut bn_other = small_resnet_style(4, 77);
        assert_ne!(bn_other.snapshot(), weights);
        bn_other.restore(&weights);
        assert_eq!(bn_other.snapshot(), weights);
    }

    #[test]
    #[should_panic(expected = "architecture mismatch")]
    fn restore_rejects_wrong_length() {
        let mut net = small_cnn(4, 5);
        let short = vec![0.0f32; net.snapshot().len() - 1];
        net.restore(&short);
    }

    #[test]
    fn snapshot_changes_only_after_update() {
        let data = SyntheticDataset::classification(16, 1, 16, 4, 9);
        let mut net = small_cnn(4, 5);
        let s0 = net.snapshot();
        let (x, y) = data.batch(0, 16);
        let acts = net.forward_all(&x);
        assert_eq!(net.snapshot(), s0, "forward must not mutate");
        let (_, mut dy) = Sequential::softmax_xent(acts.last().unwrap(), &y);
        let grads = net.backward_from(&acts, &mut dy);
        assert_eq!(net.snapshot(), s0, "backward must not mutate");
        net.apply(&grads, 0.1);
        assert_ne!(net.snapshot(), s0);
    }

    #[test]
    fn gradient_accumulate_and_scale() {
        let data = SyntheticDataset::classification(8, 1, 16, 4, 11);
        let net = small_cnn(4, 5);
        let (x, y) = data.batch(0, 8);
        let acts = net.forward_all(&x);
        let (_, mut dy) = Sequential::softmax_xent(acts.last().unwrap(), &y);
        let g1 = net.backward_from(&acts, &mut dy.clone());
        let mut sum = net.backward_from(&acts, &mut dy);
        sum.accumulate(&g1);
        sum.scale(0.5);
        // (g + g)/2 == g
        for (a, b) in sum.per_layer.iter().zip(&g1.per_layer) {
            for (ta, tb) in a.grads.iter().zip(&b.grads) {
                for (va, vb) in ta.data.iter().zip(&tb.data) {
                    assert!((va - vb).abs() < 1e-6);
                }
            }
        }
        assert!(sum.bytes() > 0);
    }
}

//! The 5-stage data-parallel KARMA pipeline (paper Fig. 3).
//!
//! Per worker and iteration:
//!
//! 1. capacity-based forward/backward with swap + recompute interleaving
//!    (the single-GPU schedule, with block **state** riding the swaps so
//!    that arbitrarily large models fit);
//! 2. after each block's backward, its gradients move to the host
//!    (overlapped with activation swap-ins on the opposite DMA direction);
//! 3. the **phased gradient exchange**: finished blocks AllReduce without
//!    waiting for the rest (grouped per Shi et al. to amortize latency);
//! 4. the weight update runs **on the CPU** (stage 5 in the paper's
//!    numbering includes the swap-back, which overlaps the next forward).
//!
//! The returned iteration time is the steady-state estimate: the makespan
//! of the extended plan, which includes the tail where the front blocks'
//! exchange + update extends past the last backward.

use karma_core::capacity::{build_training_plan, CapacityPlanOptions};
use karma_core::cost::{BlockCosts, LayerCostTable};
use karma_core::lower::{simulate_plan, LowerOptions, SimMetrics};
use karma_core::opt::refine_recompute;
use karma_core::plan::{OpKind, Plan};
use karma_graph::{MemoryParams, ModelGraph};
use karma_hw::ClusterSpec;
use karma_net::{AllReduceAlgo, AllReduceModel, PhasedExchange};
use serde::{Deserialize, Serialize};

/// Options for the distributed iteration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DistOptions {
    /// Use the phased (grouped) gradient exchange; `false` = one bulk
    /// AllReduce after the whole backward (the naive port).
    pub phased_exchange: bool,
    /// Interleave recompute in the per-worker schedule.
    pub recompute: bool,
    /// ZeRO-style state partitioning: model state per worker shrinks by
    /// the worker count (the ZeRO+KARMA combination of Fig. 8).
    pub zero_partition: bool,
    /// Candidate uniform block counts for the per-worker schedule search.
    pub block_counts: Vec<usize>,
}

impl Default for DistOptions {
    fn default() -> Self {
        DistOptions {
            phased_exchange: true,
            recompute: true,
            zero_partition: false,
            block_counts: vec![8, 12, 16, 24, 32, 48],
        }
    }
}

/// Result of planning one data-parallel KARMA iteration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DistResult {
    /// Steady-state time per training iteration (s).
    pub iter_time: f64,
    /// Per-worker simulated metrics (compute lane occupancy etc.).
    pub metrics: SimMetrics,
    /// Seconds the gradient exchange added beyond the compute makespan
    /// (the non-overlapped communication tail).
    pub exchange_tail: f64,
    /// Number of blocks in the chosen per-worker schedule.
    pub n_blocks: usize,
    /// Per-GPU mini-batch size.
    pub per_gpu_batch: usize,
}

/// Append the phased-exchange ops to a per-worker plan: one `AR` per
/// group on its **lead** block (its first-finishing member), gated on the
/// last member's backward, and one host-side `U` after each `AR`
/// (updates of different groups serialize on the simulator's host lane;
/// no explicit dependency chain is needed).
///
/// This is the single source of the distributed op shape:
/// [`karma_dp_iteration`] emits through it, and
/// `karma_core::bridge::lower_to_runtime` recovers exactly these groups
/// as its `DistSchedule` — the round-trip the distributed
/// plan→runtime tests pin.
pub fn append_exchange_ops(plan: &mut Plan, groups: &PhasedExchange) {
    for g in &groups.groups {
        let lead = g.blocks[0];
        // The group launches when its *last-finishing* member's backward
        // completes; members are in backward order, so that's the final
        // entry.
        let gate = *g.blocks.last().expect("groups are non-empty");
        let b_gate = plan
            .find(OpKind::Backward, gate)
            .expect("every block has a backward");
        let ar = plan.push(OpKind::AllReduce, lead, vec![b_gate]);
        plan.push(OpKind::HostUpdate, lead, vec![ar]);
    }
}

/// Build block costs for the distributed setting: block state (weights,
/// gradients, optimizer) *rides the swaps* instead of being pinned on the
/// device, which is what frees data-parallel KARMA from the model-size
/// floor (paper: "the layers (including their weights) do not entirely
/// reside on the GPU").
fn distributed_costs(
    table: &LayerCostTable,
    boundaries: &[usize],
    usable_bytes: u64,
    input_bytes: u64,
    state_divisor: u64,
) -> BlockCosts {
    let mut c = table.block_costs(boundaries);
    let n = c.n_blocks();
    for b in 0..n {
        let state = c.state_bytes[b] / state_divisor;
        c.state_bytes[b] = state;
        c.act_bytes[b] += state; // occupies device memory while resident
        c.swap_bytes[b] += state; // and moves over the interconnect
        c.grad_bytes[b] /= state_divisor;
    }
    // State is no longer statically resident, so the full device is
    // available to the streamed working set.
    c.act_capacity = usable_bytes as i64 - input_bytes as i64;
    c
}

/// Plan and simulate one steady-state data-parallel KARMA iteration of
/// `graph` at `per_gpu_batch` per worker on `cluster`.
pub fn karma_dp_iteration(
    graph: &ModelGraph,
    per_gpu_batch: usize,
    cluster: &ClusterSpec,
    mem: &MemoryParams,
    opts: &DistOptions,
) -> DistResult {
    let node = &cluster.node;
    let table = LayerCostTable::from_graph(graph, per_gpu_batch, node, mem);
    let input_bytes = graph.layers[0].out_shape.elements() * per_gpu_batch as u64 * mem.dtype_bytes;
    let state_divisor = if opts.zero_partition {
        cluster.total_gpus().max(1) as u64
    } else {
        1
    };

    let allreduce = AllReduceModel::new(AllReduceAlgo::Hierarchical, cluster);
    let n = graph.len();

    let mut best: Option<(DistResult, f64)> = None;
    for &k in &opts.block_counts {
        let k = k.clamp(1, n);
        let part = karma_graph::BlockPartition::uniform(n, k);
        let costs = distributed_costs(
            &table,
            part.boundaries(),
            node.gpu.usable_bytes(),
            input_bytes,
            state_divisor,
        );
        if !costs.is_schedulable() {
            continue;
        }
        let recompute = if opts.recompute && !costs.fits_in_core() {
            refine_recompute(&costs)
        } else {
            vec![false; costs.n_blocks()]
        };
        let cp = build_training_plan(
            &costs,
            &CapacityPlanOptions::karma_with_recompute(recompute),
        );
        let mut plan = cp.plan.clone();

        // Stages 3-5: per-block gradient path. Group blocks per the phased
        // exchange (or one bulk group), ordered by backward completion.
        let groups = if opts.phased_exchange {
            PhasedExchange::plan(&costs.grad_bytes, &allreduce)
        } else {
            PhasedExchange::bulk(&costs.grad_bytes)
        };
        // Per-block durations (applied to the group's *lead* block; the
        // rest of the group gets zero-duration ops chained to it).
        let mut ar_time = vec![0.0; costs.n_blocks()];
        let mut up_time = vec![0.0; costs.n_blocks()];
        for g in &groups.groups {
            let lead = g.blocks[0];
            // Host-bound hop over PCIe for the group's gradients, then the
            // inter-node exchange.
            ar_time[lead] = g.bytes as f64 / node.host_link.bandwidth + allreduce.time(g.bytes);
            let group_params: u64 = g.blocks.iter().map(|&b| costs.params[b]).sum();
            up_time[lead] = node.cpu.update_time(group_params / state_divisor, 5.0);
        }
        append_exchange_ops(&mut plan, &groups);

        let lower = LowerOptions {
            swap_state: false, // state already folded into swap_bytes
            allreduce_time: ar_time,
            update_time: up_time,
            ..Default::default()
        };
        let (trace, metrics) = simulate_plan(&plan, &costs, &lower);
        let compute_end = trace
            .spans()
            .iter()
            .filter(|s| s.lane == karma_sim::LaneKind::Compute)
            .map(|s| s.end)
            .fold(0.0f64, f64::max);
        let result = DistResult {
            iter_time: metrics.makespan,
            metrics,
            exchange_tail: (metrics.makespan - compute_end).max(0.0),
            n_blocks: costs.n_blocks(),
            per_gpu_batch,
        };
        let key = if metrics.capacity_ok {
            metrics.makespan
        } else {
            f64::INFINITY
        };
        if best.as_ref().is_none_or(|(_, k0)| key < *k0) {
            best = Some((result, key));
        }
    }
    best.map(|(r, _)| r)
        .expect("no schedulable distributed blocking; model block too large for device")
}

#[cfg(test)]
mod tests {
    use super::*;
    use karma_graph::{GraphBuilder, Shape};
    use karma_zoo::transformer;

    fn small_transformer() -> ModelGraph {
        transformer::gpt2_like("gpt-small", 768, 12, 6)
    }

    fn cnn() -> ModelGraph {
        let mut b = GraphBuilder::new("cnn", Shape::chw(3, 64, 64));
        for _ in 0..8 {
            b.conv_bn_relu(32, 3, 1, 1);
        }
        b.global_avg_pool();
        b.flatten();
        b.fc(10);
        b.build()
    }

    #[test]
    fn dp_iteration_runs_and_is_feasible() {
        let g = cnn();
        let cluster = ClusterSpec::abci(2);
        let r = karma_dp_iteration(
            &g,
            64,
            &cluster,
            &MemoryParams::default(),
            &DistOptions::default(),
        );
        assert!(r.iter_time > 0.0);
        assert!(r.metrics.capacity_ok);
        assert!(r.n_blocks >= 1);
    }

    #[test]
    fn phased_exchange_beats_bulk() {
        // The headline mechanism: overlapping per-block exchanges with the
        // remaining backward must not be slower than one bulk AllReduce.
        let g = small_transformer();
        let cluster = ClusterSpec::abci(8);
        let mem = MemoryParams::default();
        let phased = karma_dp_iteration(&g, 4, &cluster, &mem, &DistOptions::default());
        let bulk = karma_dp_iteration(
            &g,
            4,
            &cluster,
            &mem,
            &DistOptions {
                phased_exchange: false,
                ..Default::default()
            },
        );
        assert!(
            phased.iter_time <= bulk.iter_time + 1e-9,
            "phased {} !<= bulk {}",
            phased.iter_time,
            bulk.iter_time
        );
    }

    #[test]
    fn models_beyond_device_memory_still_train() {
        // The whole point of Sec. III-G: a model whose *state* exceeds the
        // GPU trains data-parallel because state rides the swap pipeline.
        let g = transformer::gpt2_like("gpt-1.6b", 1600, 25, 48);
        let mem = MemoryParams::default();
        let state = g.memory(1, &mem).model_state();
        let cluster = ClusterSpec::abci(4);
        assert!(
            state > cluster.node.gpu.usable_bytes(),
            "test needs an over-sized model"
        );
        let r = karma_dp_iteration(&g, 1, &cluster, &mem, &DistOptions::default());
        assert!(r.metrics.capacity_ok, "peak {}", r.metrics.peak_act_bytes);
        assert!(r.iter_time > 0.0);
    }

    #[test]
    fn zero_partitioning_shrinks_iteration_time() {
        // ZeRO+KARMA: partitioned state means less streamed volume.
        let g = transformer::gpt2_like("gpt-1.6b", 1600, 25, 48);
        let mem = MemoryParams::default();
        let cluster = ClusterSpec::abci(64);
        let plain = karma_dp_iteration(&g, 1, &cluster, &mem, &DistOptions::default());
        let zeroed = karma_dp_iteration(
            &g,
            1,
            &cluster,
            &mem,
            &DistOptions {
                zero_partition: true,
                ..Default::default()
            },
        );
        assert!(
            zeroed.iter_time < plain.iter_time,
            "zero {} !< plain {}",
            zeroed.iter_time,
            plain.iter_time
        );
    }

    #[test]
    fn exchange_tail_is_bounded_by_one_group() {
        let g = cnn();
        let cluster = ClusterSpec::abci(4);
        let r = karma_dp_iteration(
            &g,
            32,
            &cluster,
            &MemoryParams::default(),
            &DistOptions::default(),
        );
        // The tail can't exceed the full exchange + update serial time.
        assert!(r.exchange_tail < r.iter_time);
    }
}

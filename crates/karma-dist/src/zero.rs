//! ZeRO-style memory-optimizer cost model (Fig. 8, Turing-NLG panel).
//!
//! ZeRO (paper ref \[4\]) partitions optimizer state, gradients and
//! (optionally) parameters across the data-parallel ranks, shrinking the
//! per-GPU model-state footprint by the DP degree. Despite that, models at
//! Turing-NLG scale (17B) still need a model-parallel dimension in the
//! reference implementation — the paper's Fig. 8 compares that hybrid
//! against pure-DP KARMA and against KARMA stacked *on top of* ZeRO
//! (state partitioning + out-of-core swapping), which wins by ~1.35×.

use karma_graph::ModelGraph;
use karma_hw::ClusterSpec;
use karma_net::{AllReduceAlgo, AllReduceModel};
use serde::{Deserialize, Serialize};

use crate::megatron::{hybrid_iter_time, HybridConfig};

/// ZeRO configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ZeroConfig {
    /// Model-parallel ways the reference hybrid still uses (intra-node).
    pub model_parallel: usize,
    /// Fixed global mini-batch (sequences).
    pub global_batch: usize,
}

/// Seconds per iteration for the ZeRO hybrid reference implementation.
///
/// Communication: ZeRO-2 style — reduce-scatter + allgather on gradients
/// (≈ the allreduce volume) plus an extra parameter allgather per
/// iteration, modelled as a 1.25× volume factor over the plain hybrid's
/// data-parallel exchange, with the same MP structure otherwise.
pub fn zero_iter_time(
    graph: &ModelGraph,
    cfg: &ZeroConfig,
    cluster: &ClusterSpec,
    gpus: usize,
) -> f64 {
    let hybrid = HybridConfig {
        model_parallel: cfg.model_parallel,
        global_batch: cfg.global_batch,
        phased_exchange: true, // ZeRO overlaps its exchange buckets
    };
    let base = hybrid_iter_time(graph, &hybrid, cluster, gpus);
    // Extra allgather volume for partitioned state.
    let d = (gpus / cfg.model_parallel.max(1)).max(1);
    let extra = if d > 1 {
        let bytes = (graph.total_params() / cfg.model_parallel.max(1) as u64) * 4 / 4;
        let model = AllReduceModel::new(AllReduceAlgo::Hierarchical, cluster);
        model.time(bytes) * 0.25
    } else {
        0.0
    };
    base + extra
}

/// Device capacity KARMA-on-ZeRO plans against: partitioning
/// `state_bytes` of per-GPU optimizer state across `workers` ranks keeps
/// only a `1/N` shard local, so `(N-1)/N` of it becomes headroom the
/// out-of-core planner can spend on activations. This is how the Fig. 8
/// "KARMA + ZeRO" bar is produced: same planner, same executor, a larger
/// effective near-memory budget.
pub fn zero_effective_capacity(base: u64, state_bytes: u64, workers: usize) -> u64 {
    if workers <= 1 {
        return base;
    }
    let n = workers as u64;
    base + state_bytes / n * (n - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use karma_zoo::transformer::turing_nlg;

    #[test]
    fn effective_capacity_frees_the_partitioned_state_share() {
        // One worker partitions nothing.
        assert_eq!(zero_effective_capacity(100, 80, 1), 100);
        // Two workers free half the state, four workers three quarters.
        assert_eq!(zero_effective_capacity(100, 80, 2), 140);
        assert_eq!(zero_effective_capacity(100, 80, 4), 160);
        // The freed share approaches (but never reaches) the full state.
        assert!(zero_effective_capacity(100, 80, 1024) < 180);
    }

    #[test]
    fn zero_scales_with_gpus_like_the_hybrid() {
        let g = turing_nlg();
        let cfg = ZeroConfig {
            model_parallel: 4,
            global_batch: 512,
        };
        let c = ClusterSpec::abci(512);
        let t512 = zero_iter_time(&g, &cfg, &c, 512);
        let t2048 = zero_iter_time(&g, &cfg, &c, 2048);
        assert!(t512 > 0.0 && t2048 > 0.0);
    }

    #[test]
    fn zero_costs_more_than_plain_hybrid_per_iteration() {
        // Partitioned state trades a little communication for memory.
        let g = turing_nlg();
        let c = ClusterSpec::abci(512);
        let zero = zero_iter_time(
            &g,
            &ZeroConfig {
                model_parallel: 4,
                global_batch: 512,
            },
            &c,
            1024,
        );
        let hybrid = hybrid_iter_time(
            &g,
            &HybridConfig {
                model_parallel: 4,
                global_batch: 512,
                phased_exchange: true,
            },
            &c,
            1024,
        );
        assert!(zero >= hybrid);
    }
}

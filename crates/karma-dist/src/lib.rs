//! Distributed KARMA (paper Sec. III-G) and the distributed baselines it is
//! evaluated against (Sec. IV-C).
//!
//! * [`pipeline`] — the first multi-GPU out-of-core method: each worker runs
//!   the single-GPU capacity-based schedule extended to the 5-stage pipeline
//!   of Fig. 3 (compute ∥ swap-out ∥ phased gradient exchange ∥ CPU-side
//!   weight update ∥ swap-in), with block *state* (weights/gradients) riding
//!   the swaps so models far beyond device memory train data-parallel.
//! * [`megatron`] — the Megatron-LM model+data-parallel hybrid cost model
//!   (Table IV / Fig. 8), with and without the phased-exchange optimization
//!   the paper adds for a fair comparison.
//! * [`zero`] — a ZeRO-style state-partitioning cost model and the
//!   ZeRO+KARMA combination (Fig. 8 right panel).
//! * [`costperf`] — the Table V cost/performance ($/P) analysis comparing
//!   data-parallel scale-out against KARMA batch scale-up.
//!
//! **Workspace position:** the widest analysis-side consumer — combines
//! `karma-core` planning, `karma-net` collective models, `karma-sim`
//! simulation and `karma-zoo` workloads; only `karma-bench` sits above it.

pub mod costperf;
pub mod megatron;
pub mod pipeline;
pub mod zero;

pub use costperf::{cost_perf_table, CostPerfRow};
pub use megatron::{hybrid_iter_time, HybridConfig};
pub use pipeline::{append_exchange_ops, karma_dp_iteration, DistOptions, DistResult};
pub use zero::{zero_effective_capacity, zero_iter_time, ZeroConfig};

//! Cost/performance analysis — paper Table V.
//!
//! Two ways to grow the global mini-batch `G`:
//!
//! * **data parallel**: keep each GPU at its in-core maximum batch and add
//!   GPUs (`G / b_max` of them) — pays growing AllReduce cost;
//! * **data-parallel KARMA**: keep the GPU count fixed and grow the
//!   per-GPU batch out-of-core — pays growing swap stalls.
//!
//! `$/P` = GPUs / throughput, normalized to the first row. The paper's
//! finding: KARMA is the cheaper scaling axis for the first 2–3 steps
//! (the capacity-based strategy degrades slowly at first), then classic
//! scale-out wins as out-of-core slowdown compounds.

use karma_core::planner::{Karma, KarmaOptions};
use karma_graph::{MemoryParams, ModelGraph};
use karma_hw::ClusterSpec;
use karma_net::{AllReduceAlgo, AllReduceModel};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// One Table V row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CostPerfRow {
    /// Global mini-batch.
    pub global_batch: usize,
    /// GPUs the data-parallel configuration uses.
    pub dp_gpus: usize,
    /// Data-parallel $/P, normalized to the first row.
    pub dp_cost_perf: f64,
    /// GPUs data-parallel KARMA uses (fixed).
    pub karma_gpus: usize,
    /// KARMA $/P, normalized to the first row.
    pub karma_cost_perf: f64,
}

/// Iteration time of a `gpus`-way data-parallel run whose per-GPU schedule
/// takes `local_iter` seconds, adding the (phased, partly overlapped)
/// gradient exchange.
fn dp_iter_time(local_iter: f64, grad_bytes: u64, gpus: usize) -> f64 {
    if gpus <= 1 {
        return local_iter;
    }
    let cluster = ClusterSpec::abci_with_gpus(gpus);
    let model = AllReduceModel::with_contention(
        AllReduceAlgo::Hierarchical,
        &cluster,
        crate::megatron::STEP_OVERHEAD_S,
        crate::megatron::CONGESTION,
    );
    let comm = model.time(grad_bytes);
    // Phased exchange hides most of the communication behind backward
    // (≈ 60% of the local iteration); the rest is exposed tail.
    local_iter + (comm - 0.6 * local_iter).max(0.08 * comm)
}

/// Build the Table V rows for `graph`: `base_batch` is the in-core per-GPU
/// maximum; `steps` are the global-batch multipliers (the paper uses
/// 1×..6×); both strategies start from `base_gpus` GPUs.
pub fn cost_perf_table(
    graph: &ModelGraph,
    base_batch: usize,
    base_gpus: usize,
    steps: &[usize],
    mem: &MemoryParams,
) -> Vec<CostPerfRow> {
    let cluster = ClusterSpec::abci_with_gpus(base_gpus);
    let planner = Karma::new(cluster.node.clone(), mem.clone());
    let grad_bytes = graph.total_params() * 4;

    // Data-parallel leg: the per-GPU schedule never changes.
    let in_core = planner
        .plan(graph, base_batch, &KarmaOptions::fast(7))
        .expect("base batch must fit");
    let local_in_core = in_core.metrics.makespan;

    // KARMA leg: one independent out-of-core planner run per step — the
    // expensive part of the table, swept in parallel (order-preserving).
    let karma_makespans: Vec<f64> = steps
        .par_iter()
        .map(|&s| {
            planner
                .plan(graph, base_batch * s, &KarmaOptions::fast(7))
                .expect("KARMA plan")
                .metrics
                .makespan
        })
        .collect();

    let mut rows = Vec::with_capacity(steps.len());
    let mut norm: Option<(f64, f64)> = None;
    for (&s, &karma_makespan) in steps.iter().zip(&karma_makespans) {
        let global = base_batch * base_gpus * s;

        // DP: add GPUs.
        let dp_gpus = base_gpus * s;
        let dp_iter = dp_iter_time(local_in_core, grad_bytes, dp_gpus);
        let dp_throughput = global as f64 / dp_iter;
        let dp_cp = dp_gpus as f64 / dp_throughput;

        // KARMA: fixed GPUs, bigger per-GPU batch (out-of-core past s=1).
        let karma_iter = dp_iter_time(karma_makespan, grad_bytes, base_gpus);
        let karma_throughput = global as f64 / karma_iter;
        let karma_cp = base_gpus as f64 / karma_throughput;

        let (dp0, k0) = *norm.get_or_insert((dp_cp, karma_cp));
        rows.push(CostPerfRow {
            global_batch: global,
            dp_gpus,
            dp_cost_perf: dp_cp / dp0,
            karma_gpus: base_gpus,
            karma_cost_perf: karma_cp / k0,
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use karma_graph::{GraphBuilder, Shape};

    /// A CNN sized so `base_batch` fits and multiples exceed memory on a
    /// toy device via the calibrated memory model.
    fn model() -> ModelGraph {
        let mut b = GraphBuilder::new("cnn", Shape::chw(3, 64, 64));
        for _ in 0..10 {
            b.conv_bn_relu(64, 3, 1, 1);
        }
        b.global_avg_pool();
        b.flatten();
        b.fc(100);
        b.build()
    }

    #[test]
    fn table_has_expected_shape() {
        let g = model();
        // Calibrate so batch 32 is the in-core max on a V100.
        let usable = 16.0 * (1u64 << 30) as f64 * 0.92;
        let mem1 = MemoryParams::default();
        let peak32 = g.peak_footprint(32, &mem1) as f64;
        let mem = MemoryParams::calibrated(0.9 * usable / peak32);
        let rows = cost_perf_table(&g, 32, 100, &[1, 2, 4, 6], &mem);
        assert_eq!(rows.len(), 4);
        // Normalization anchors the first row at 1.0.
        assert!((rows[0].dp_cost_perf - 1.0).abs() < 1e-9);
        assert!((rows[0].karma_cost_perf - 1.0).abs() < 1e-9);
        // DP cost/perf grows mildly with scale (communication).
        assert!(rows[3].dp_cost_perf >= rows[0].dp_cost_perf);
        // KARMA cost/perf grows with out-of-core depth…
        assert!(rows[3].karma_cost_perf > rows[1].karma_cost_perf);
        // …and the two strategies' growth profiles genuinely diverge (which
        // side wins at depth is model-dependent: communication-heavy models
        // favour KARMA, compute-heavy ones favour scale-out — the two
        // halves of paper Table V).
        let gap = (rows[3].karma_cost_perf - rows[3].dp_cost_perf).abs();
        assert!(gap > 0.01, "strategies should diverge, gap {gap}");
        // GPU counts follow the two strategies.
        assert_eq!(rows[3].dp_gpus, 600);
        assert_eq!(rows[3].karma_gpus, 100);
    }
}

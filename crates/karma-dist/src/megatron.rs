//! Megatron-LM model+data-parallel hybrid cost model (Table IV, Fig. 8).
//!
//! Megatron's tensor model parallelism splits every transformer layer
//! across `m` GPUs and inserts two AllReduces per layer per pass (four per
//! layer per iteration) over the activation tensor `batch × seq × hidden`.
//! Data parallelism then replicates the MP group `d = gpus / m` ways and
//! AllReduces each shard's gradients (`params / m`) once per iteration.
//!
//! The paper's key observation (Fig. 8) is that at large GPU counts the
//! hybrid's communication grows — MP groups start spanning nodes and the
//! DP exchange rides on more, slower rings — until pure data-parallel
//! KARMA overtakes it at parity GPU counts.

use karma_graph::ModelGraph;
use karma_hw::ClusterSpec;
use karma_net::{AllReduceAlgo, AllReduceModel};
use karma_zoo::transformer::SEQ_LEN;
use serde::{Deserialize, Serialize};

/// One hybrid configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HybridConfig {
    /// Model-parallel ways (Table IV "MP").
    pub model_parallel: usize,
    /// Fixed **global** mini-batch (sequences). Megatron trains GPT-2 with
    /// a constant global batch (512), so adding data-parallel replicas
    /// shrinks the per-replica batch — which is why communication share,
    /// and eventually epoch time, grows at scale (Fig. 8).
    pub global_batch: usize,
    /// Overlap the gradient exchange with backward ("Opt. Gradient Ex."
    /// series of Fig. 8); the original implementation serializes it.
    pub phased_exchange: bool,
}

impl HybridConfig {
    /// Megatron's training configuration: global batch 512.
    pub fn megatron(model_parallel: usize, phased_exchange: bool) -> Self {
        HybridConfig {
            model_parallel,
            global_batch: 512,
            phased_exchange,
        }
    }

    /// Per-replica batch at `gpus` GPUs (at least one sequence).
    pub fn replica_batch(&self, gpus: usize) -> usize {
        let d = (gpus / self.model_parallel.max(1)).max(1);
        (self.global_batch / d).max(1)
    }
}

/// Contention defaults used by every Fig. 8 / Table IV series: per-step
/// jitter and fabric congestion of synchronous collectives at scale,
/// calibrated to the paper's observation that the hybrid's communication
/// cost grows with GPU count (Sec. IV-C).
pub const STEP_OVERHEAD_S: f64 = 4.0e-4;
/// Fractional inter-node bandwidth loss per log2(nodes).
pub const CONGESTION: f64 = 0.12;

/// Seconds per training iteration for the MP+DP hybrid of `graph` (a
/// transformer stack) on `gpus` GPUs of `cluster`'s type.
pub fn hybrid_iter_time(
    graph: &ModelGraph,
    cfg: &HybridConfig,
    cluster: &ClusterSpec,
    gpus: usize,
) -> f64 {
    let m = cfg.model_parallel.max(1);
    assert!(gpus >= m, "need at least one full MP group");
    let d = (gpus / m).max(1);
    let node = &cluster.node;
    let replica_batch = cfg.replica_batch(gpus);

    // Compute: fwd + bwd ≈ 3x forward FLOPs, split m ways, with an MP
    // efficiency loss from fragmenting GEMMs (grows mildly with m).
    let flops = graph.forward_flops(replica_batch) * 3.0;
    let mp_efficiency = 1.0 / (1.0 + 0.04 * (m as f64).log2());
    let compute = flops / (m as f64 * node.gpu.effective_flops() * mp_efficiency);

    // MP communication: 4 AllReduces per transformer layer per iteration
    // over batch × seq × hidden activations, across the m-GPU group.
    let mp_comm = if m > 1 {
        let layers = graph
            .layers
            .iter()
            .filter(|l| l.kind.mnemonic() == "xfmr")
            .count() as f64;
        let hidden = graph
            .layers
            .iter()
            .find_map(|l| l.out_shape.seq_dims().map(|(_, d)| d))
            .unwrap_or(1024) as f64;
        let bytes = (replica_batch as f64 * SEQ_LEN as f64 * hidden * 4.0) as u64;
        let group = mp_group_model(cluster, m);
        4.0 * layers * group.time(bytes)
    } else {
        0.0
    };

    // DP communication: AllReduce of this shard's gradients across the d
    // replicas (hierarchical). Serialized in the original; the optimized
    // variant hides it behind backward compute (≈ 2/3 of compute).
    let dp_comm = if d > 1 {
        let grad_bytes = (graph.total_params() / m as u64) * 4;
        let dp_cluster = ClusterSpec {
            node: node.clone(),
            nodes: (d * m).div_ceil(node.gpus_per_node).max(1),
            system_link: cluster.system_link.clone(),
        };
        let model = AllReduceModel::with_contention(
            AllReduceAlgo::Hierarchical,
            &dp_cluster,
            STEP_OVERHEAD_S,
            CONGESTION,
        );
        let t = model.time(grad_bytes);
        if cfg.phased_exchange {
            (t - compute * 2.0 / 3.0).max(0.05 * t)
        } else {
            t
        }
    } else {
        0.0
    };

    compute + mp_comm + dp_comm
}

/// AllReduce model for one MP group: NVLink while it fits in a node, the
/// system interconnect once it spans nodes (the Fig. 8 communication-growth
/// effect).
fn mp_group_model(cluster: &ClusterSpec, m: usize) -> AllReduceModel {
    let node = &cluster.node;
    let group_cluster = ClusterSpec {
        node: node.clone(),
        nodes: m.div_ceil(node.gpus_per_node).max(1),
        system_link: cluster.system_link.clone(),
    };
    AllReduceModel::with_contention(
        AllReduceAlgo::Hierarchical,
        &group_cluster,
        STEP_OVERHEAD_S,
        CONGESTION,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use karma_zoo::transformer::{megatron, megatron_table4};

    fn cluster() -> ClusterSpec {
        ClusterSpec::abci(512)
    }

    #[test]
    fn more_gpus_reduce_iteration_time_until_comm_dominates() {
        let cfg5 = &megatron_table4()[4]; // 8.3B, MP=16
        let g = megatron(cfg5);
        let hybrid = HybridConfig::megatron(cfg5.model_parallel, false);
        // Fixed global batch: adding replicas shrinks compute per GPU, but
        // communication grows, so per-iteration gains flatten well below
        // the ideal 8x from 128 -> 1024 GPUs.
        let t128 = hybrid_iter_time(&g, &hybrid, &cluster(), 128);
        let t1024 = hybrid_iter_time(&g, &hybrid, &cluster(), 1024);
        assert!(t1024 < t128);
        assert!(
            t1024 > t128 / 8.0 * 1.05,
            "comm must erode scaling below ideal: {t1024} vs {t128}"
        );
        // And the erosion compounds: 2048 GPUs gain little over 1024.
        let t2048 = hybrid_iter_time(&g, &hybrid, &cluster(), 2048);
        assert!(t2048 > t1024 * 0.55, "{t2048} vs {t1024}");
    }

    #[test]
    fn mp_spanning_nodes_is_expensive() {
        let cfg = &megatron_table4()[4]; // MP=16 spans 4 ABCI nodes
        let g = megatron(cfg);
        let narrow = HybridConfig::megatron(4, false); // fits one node
        let wide = HybridConfig::megatron(16, false);
        let c = cluster();
        let t_narrow = hybrid_iter_time(&g, &narrow, &c, 64);
        let t_wide = hybrid_iter_time(&g, &wide, &c, 64);
        // Wide MP buys compute split ×4 but pays inter-node exchanges:
        // the speedup must be clearly sublinear.
        assert!(
            t_wide > t_narrow / 4.0 * 1.3,
            "wide MP should not scale linearly: {t_wide} vs {t_narrow}"
        );
    }

    #[test]
    fn phased_exchange_helps_the_hybrid_too() {
        let cfg = &megatron_table4()[2]; // 2.5B, MP=4
        let g = megatron(cfg);
        let c = cluster();
        let base = HybridConfig::megatron(4, false);
        let opt = HybridConfig::megatron(4, true);
        let t_base = hybrid_iter_time(&g, &base, &c, 1024);
        let t_opt = hybrid_iter_time(&g, &opt, &c, 1024);
        assert!(t_opt < t_base);
    }

    #[test]
    #[should_panic(expected = "full MP group")]
    fn too_few_gpus_rejected() {
        let cfg = &megatron_table4()[4];
        let g = megatron(cfg);
        let hybrid = HybridConfig::megatron(16, false);
        hybrid_iter_time(&g, &hybrid, &cluster(), 8);
    }
}

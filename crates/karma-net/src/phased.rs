//! Phased (grouped) gradient exchange — paper Sec. III-G stage 4.
//!
//! Instead of one AllReduce over the entire gradient at the end of backward,
//! KARMA exchanges gradients **by groups of blocks**: a block's gradients
//! enter the exchange as soon as its backward pass (and swap-out to the
//! host) completes, overlapping communication with the rest of the backward
//! phase. The grouping policy follows Shi et al.'s merged-gradient WFBP
//! (paper ref \[36\]): merge adjacent small tensors until the α-cost of an
//! extra message outweighs the β-cost of delaying the merge.

use serde::{Deserialize, Serialize};

use crate::allreduce::AllReduceModel;

/// A contiguous group of blocks whose gradients are exchanged together.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExchangeGroup {
    /// Block indices in the group (contiguous, in backward completion order).
    pub blocks: Vec<usize>,
    /// Total gradient bytes exchanged for the group.
    pub bytes: u64,
}

/// The phased-exchange schedule for one training iteration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhasedExchange {
    /// Groups in launch order (backward completion order: last block first).
    pub groups: Vec<ExchangeGroup>,
}

impl PhasedExchange {
    /// Greedy MG-WFBP-style grouping. `grad_bytes[i]` is block `i`'s
    /// gradient size; groups are formed over blocks in *backward* order
    /// (block b-1 … 0 — the paper numbers blocks from the front, and the
    /// backward phase finishes the last block first).
    ///
    /// A new message is opened when the accumulated group already amortizes
    /// the per-message latency: merging is beneficial while
    /// `α > β·(merge delay)`, which reduces to a byte threshold
    /// `merge_threshold = α · bandwidth` on the bottleneck link.
    ///
    /// Edge cases produce valid schedules, never degenerate ones: an
    /// empty gradient list yields zero groups, and a single-block plan
    /// yields exactly one single-block group even when the block is far
    /// below the merge threshold (the tail always flushes). Every group
    /// in a returned schedule is non-empty.
    pub fn plan(grad_bytes: &[u64], model: &AllReduceModel) -> Self {
        // Threshold: bytes whose transfer time equals one message latency.
        // Below it, an extra message costs more than merging.
        let t_small = model.time(1);
        let t_ref = model.time(1 << 20);
        // Effective per-message fixed cost and per-byte cost from two probes.
        let beta = (t_ref - t_small) / ((1 << 20) - 1) as f64;
        let threshold = if beta > 0.0 {
            (t_small / beta) as u64
        } else {
            0
        };

        let mut groups: Vec<ExchangeGroup> = Vec::new();
        let mut current = ExchangeGroup {
            blocks: Vec::new(),
            bytes: 0,
        };
        for i in (0..grad_bytes.len()).rev() {
            current.blocks.push(i);
            current.bytes += grad_bytes[i];
            if current.bytes >= threshold {
                groups.push(std::mem::replace(
                    &mut current,
                    ExchangeGroup {
                        blocks: Vec::new(),
                        bytes: 0,
                    },
                ));
            }
        }
        if !current.blocks.is_empty() {
            // Tail too small to amortize a message: merge into the last
            // group if one exists.
            if let Some(last) = groups.last_mut() {
                last.blocks.extend(current.blocks);
                last.bytes += current.bytes;
            } else {
                groups.push(current);
            }
        }
        PhasedExchange { groups }
    }

    /// One group per block: the fully eager (un-merged) schedule.
    pub fn per_block(grad_bytes: &[u64]) -> Self {
        PhasedExchange {
            groups: (0..grad_bytes.len())
                .rev()
                .map(|i| ExchangeGroup {
                    blocks: vec![i],
                    bytes: grad_bytes[i],
                })
                .collect(),
        }
    }

    /// Single bulk exchange of everything (the non-phased baseline). An
    /// empty gradient list yields zero groups — never an empty group,
    /// which downstream consumers (the pipeline's per-group lead lookup,
    /// the runtime's gate detection) cannot represent.
    pub fn bulk(grad_bytes: &[u64]) -> Self {
        if grad_bytes.is_empty() {
            return PhasedExchange { groups: Vec::new() };
        }
        PhasedExchange {
            groups: vec![ExchangeGroup {
                blocks: (0..grad_bytes.len()).rev().collect(),
                bytes: grad_bytes.iter().sum(),
            }],
        }
    }

    /// Index of the group that exchanges `block`'s gradients.
    ///
    /// ```
    /// use karma_net::PhasedExchange;
    ///
    /// let plan = PhasedExchange::per_block(&[10, 20, 30]);
    /// // Launch order is backward-completion order: block 2 ships first.
    /// assert_eq!(plan.group(2), Some(0));
    /// assert_eq!(plan.group(0), Some(2));
    /// assert_eq!(plan.group(7), None);
    /// ```
    pub fn group(&self, block: usize) -> Option<usize> {
        self.groups.iter().position(|g| g.blocks.contains(&block))
    }

    /// Total bytes across groups.
    pub fn total_bytes(&self) -> u64 {
        self.groups.iter().map(|g| g.bytes).sum()
    }

    /// Sum of standalone group exchange times (no overlap) — an upper bound
    /// on communication time, and the serial cost if nothing overlaps.
    pub fn serial_time(&self, model: &AllReduceModel) -> f64 {
        self.groups.iter().map(|g| model.time(g.bytes)).sum()
    }

    /// Pipelined exchange finish time, given per-group "ready" times (when
    /// the group's gradients finished computing). Exchanges are serialized
    /// on the network but may start as soon as their group is ready.
    pub fn pipelined_finish(&self, ready: &[f64], model: &AllReduceModel) -> f64 {
        assert_eq!(ready.len(), self.groups.len(), "one ready time per group");
        let mut t = 0.0f64;
        for (g, &r) in self.groups.iter().zip(ready) {
            t = t.max(r) + model.time(g.bytes);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allreduce::AllReduceAlgo;
    use karma_hw::ClusterSpec;

    fn model() -> AllReduceModel {
        AllReduceModel::new(AllReduceAlgo::Ring, &ClusterSpec::abci(32))
    }

    #[test]
    fn grouping_preserves_total_bytes_and_order() {
        let grads = vec![10 << 20, 5 << 20, 80 << 20, 1 << 20, 200 << 20];
        let m = model();
        for plan in [
            PhasedExchange::plan(&grads, &m),
            PhasedExchange::per_block(&grads),
            PhasedExchange::bulk(&grads),
        ] {
            assert_eq!(plan.total_bytes(), grads.iter().sum::<u64>());
            // Backward order: flattened block list is strictly decreasing.
            let flat: Vec<usize> = plan.groups.iter().flat_map(|g| g.blocks.clone()).collect();
            let mut sorted = flat.clone();
            sorted.sort_unstable_by(|a, b| b.cmp(a));
            assert_eq!(flat, sorted);
            // Complete and disjoint.
            let mut seen = flat;
            seen.sort_unstable();
            assert_eq!(seen, (0..grads.len()).collect::<Vec<_>>());
        }
    }

    #[test]
    fn tiny_gradients_get_merged() {
        // 1 KiB blocks: far below the latency-amortization threshold.
        let grads = vec![1024u64; 16];
        let plan = PhasedExchange::plan(&grads, &model());
        assert!(
            plan.groups.len() < 16,
            "expected merging, got {} groups",
            plan.groups.len()
        );
    }

    #[test]
    fn huge_gradients_stay_separate() {
        let grads = vec![512 << 20; 4];
        let plan = PhasedExchange::plan(&grads, &model());
        assert_eq!(plan.groups.len(), 4);
    }

    #[test]
    fn phased_beats_bulk_when_overlapped() {
        // Three equal groups becoming ready at staggered times: the phased
        // schedule hides two exchanges inside the compute, the bulk one
        // cannot start until everything is ready.
        let grads = vec![100 << 20; 3];
        let m = model();
        let phased = PhasedExchange::per_block(&grads);
        let bulk = PhasedExchange::bulk(&grads);
        let t_one = m.time(grads[0]);
        let ready = vec![0.0, t_one, 2.0 * t_one];
        let phased_finish = phased.pipelined_finish(&ready, &m);
        let bulk_finish = bulk.pipelined_finish(&[2.0 * t_one], &m);
        assert!(
            phased_finish < bulk_finish,
            "{phased_finish} !< {bulk_finish}"
        );
    }

    #[test]
    fn serial_time_upper_bounds_pipelined() {
        let grads = vec![32 << 20, 64 << 20, 16 << 20];
        let m = model();
        let plan = PhasedExchange::per_block(&grads);
        let ready = vec![0.0; plan.groups.len()];
        assert!(plan.pipelined_finish(&ready, &m) <= plan.serial_time(&m) + 1e-12);
    }

    #[test]
    fn empty_gradient_list_yields_empty_plan() {
        // Zero groups, not one empty group: every group in a schedule is
        // non-empty so per-group lead/gate lookups stay total.
        let m = model();
        for plan in [
            PhasedExchange::plan(&[], &m),
            PhasedExchange::per_block(&[]),
            PhasedExchange::bulk(&[]),
        ] {
            assert!(plan.groups.is_empty());
            assert_eq!(plan.total_bytes(), 0);
            assert_eq!(plan.serial_time(&m), 0.0);
        }
    }

    #[test]
    fn single_block_plans_form_one_valid_group() {
        // A lone block far below the merge threshold must still flush
        // into exactly one group (the greedy loop's tail case), for any
        // constructor.
        let m = model();
        for grads in [[1u64], [0u64]] {
            for plan in [
                PhasedExchange::plan(&grads, &m),
                PhasedExchange::per_block(&grads),
                PhasedExchange::bulk(&grads),
            ] {
                assert_eq!(plan.groups.len(), 1);
                assert_eq!(plan.groups[0].blocks, vec![0]);
                assert_eq!(plan.groups[0].bytes, grads[0]);
            }
        }
    }

    #[test]
    fn no_schedule_ever_contains_an_empty_group() {
        let m = model();
        for grads in [vec![], vec![1u64], vec![0, 0, 0], vec![1 << 30; 5]] {
            for plan in [
                PhasedExchange::plan(&grads, &m),
                PhasedExchange::per_block(&grads),
                PhasedExchange::bulk(&grads),
            ] {
                assert!(plan.groups.iter().all(|g| !g.blocks.is_empty()));
            }
        }
    }

    #[test]
    fn group_lookup_covers_every_block() {
        let grads = vec![10 << 20, 5 << 20, 80 << 20, 1 << 20, 200 << 20];
        let plan = PhasedExchange::plan(&grads, &model());
        for b in 0..grads.len() {
            let g = plan.group(b).expect("every block is grouped");
            assert!(plan.groups[g].blocks.contains(&b));
        }
        assert_eq!(plan.group(grads.len()), None);
    }
}

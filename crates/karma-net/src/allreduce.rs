//! α–β AllReduce cost models (ring, tree, hierarchical).

use karma_hw::{ClusterSpec, LinkSpec};
use serde::{Deserialize, Serialize};

/// AllReduce algorithm choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AllReduceAlgo {
    /// Bandwidth-optimal ring: `2(p-1)/p · n/B + 2(p-1)·α`.
    Ring,
    /// Latency-optimal binomial tree (reduce + broadcast):
    /// `2·log2(p) · (α + n/B)`.
    Tree,
    /// Two-level: NVLink ring inside each node, system-link ring across
    /// nodes over `1/g` of the data (g = GPUs per node), then intra-node
    /// broadcast — the NCCL-style hierarchy ABCI-scale runs use.
    Hierarchical,
}

/// An AllReduce cost model bound to a concrete cluster.
#[derive(Debug, Clone)]
pub struct AllReduceModel {
    algo: AllReduceAlgo,
    gpus: usize,
    gpus_per_node: usize,
    peer: LinkSpec,
    system: LinkSpec,
    /// Extra per-ring-step synchronization overhead across nodes (s):
    /// models OS noise / straggler effects of synchronous collectives at
    /// scale. 0 = ideal network.
    step_overhead: f64,
    /// Inter-node bandwidth degradation per log2(nodes) (fraction):
    /// models fabric congestion as rings span more of the machine.
    congestion: f64,
}

impl AllReduceModel {
    /// Build an *ideal-network* model for `cluster` using `algo`.
    pub fn new(algo: AllReduceAlgo, cluster: &ClusterSpec) -> Self {
        Self::with_contention(algo, cluster, 0.0, 0.0)
    }

    /// Build a model with scale-dependent contention: `step_overhead`
    /// seconds of jitter per inter-node ring step and `congestion`
    /// fractional bandwidth loss per log2(nodes). The paper observes that
    /// "increasing the numbers of GPUs also increases the communication
    /// cost"; these two knobs reproduce that growth (see EXPERIMENTS.md).
    pub fn with_contention(
        algo: AllReduceAlgo,
        cluster: &ClusterSpec,
        step_overhead: f64,
        congestion: f64,
    ) -> Self {
        AllReduceModel {
            algo,
            gpus: cluster.total_gpus(),
            gpus_per_node: cluster.node.gpus_per_node,
            peer: cluster.node.peer_link.clone(),
            system: cluster.system_link.clone(),
            step_overhead,
            congestion,
        }
    }

    /// Number of participating ranks.
    #[inline]
    pub fn ranks(&self) -> usize {
        self.gpus
    }

    /// Seconds to allreduce `bytes` across all ranks.
    pub fn time(&self, bytes: u64) -> f64 {
        let p = self.gpus as f64;
        if self.gpus <= 1 || bytes == 0 {
            return 0.0;
        }
        let n = bytes as f64;
        let spans_nodes = self.gpus > self.gpus_per_node;
        let (extra_step, cong) = if spans_nodes {
            (self.step_overhead, self.congestion)
        } else {
            (0.0, 0.0)
        };
        match self.algo {
            AllReduceAlgo::Ring => {
                let link = self.flat_link();
                let nodes = (p / self.gpus_per_node.max(1) as f64).max(1.0);
                let bw = link.bandwidth / (1.0 + cong * nodes.log2());
                2.0 * (p - 1.0) / p * n / bw + 2.0 * (p - 1.0) * (link.latency + extra_step)
            }
            AllReduceAlgo::Tree => {
                let link = self.flat_link();
                2.0 * p.log2().ceil() * (link.latency + extra_step + n / link.bandwidth)
            }
            AllReduceAlgo::Hierarchical => {
                let g = self.gpus_per_node.min(self.gpus) as f64;
                let nodes = (p / g).ceil();
                // Intra-node reduce-scatter + allgather over NVLink.
                let intra = 2.0 * (g - 1.0) / g * n / self.peer.bandwidth
                    + 2.0 * (g - 1.0) * self.peer.latency;
                if nodes <= 1.0 {
                    return intra;
                }
                // Inter-node ring over the per-node shard (n/g), with
                // scale-dependent contention.
                let bw = self.system.bandwidth / (1.0 + self.congestion * nodes.log2());
                let step_cost = self.system.latency + self.step_overhead;
                let inter =
                    2.0 * (nodes - 1.0) / nodes * (n / g) / bw + 2.0 * (nodes - 1.0) * step_cost;
                intra + inter
            }
        }
    }

    /// Achieved algorithm bandwidth for a message of `bytes` (bytes/s of
    /// *input data* reduced per second), the figure NCCL reports.
    pub fn algo_bandwidth(&self, bytes: u64) -> f64 {
        let t = self.time(bytes);
        if t == 0.0 {
            f64::INFINITY
        } else {
            bytes as f64 / t
        }
    }

    fn flat_link(&self) -> &LinkSpec {
        // A flat ring must traverse the slowest link when it spans nodes.
        if self.gpus > self.gpus_per_node {
            &self.system
        } else {
            &self.peer
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster(nodes: usize) -> ClusterSpec {
        ClusterSpec::abci(nodes)
    }

    #[test]
    fn single_rank_is_free() {
        let mut c = cluster(1);
        c.node.gpus_per_node = 1;
        let m = AllReduceModel::new(AllReduceAlgo::Ring, &c);
        assert_eq!(m.time(1 << 30), 0.0);
    }

    #[test]
    fn ring_time_approaches_2n_over_b() {
        // For large p, ring time -> 2n/B.
        let m = AllReduceModel::new(AllReduceAlgo::Ring, &cluster(256));
        let n: u64 = 1 << 30;
        let b = m.flat_link().bandwidth;
        let ideal = 2.0 * n as f64 / b;
        let t = m.time(n);
        assert!(t > ideal, "must include latency");
        assert!(
            t < 1.3 * ideal,
            "large-message ring should near the bound: {t} vs {ideal}"
        );
    }

    #[test]
    fn tree_beats_ring_for_tiny_messages_at_scale() {
        let c = cluster(256);
        let ring = AllReduceModel::new(AllReduceAlgo::Ring, &c);
        let tree = AllReduceModel::new(AllReduceAlgo::Tree, &c);
        assert!(tree.time(1024) < ring.time(1024));
        // …and ring wins for huge messages.
        assert!(ring.time(1 << 32) < tree.time(1 << 32));
    }

    #[test]
    fn hierarchical_beats_flat_ring_across_nodes() {
        let c = cluster(64);
        let flat = AllReduceModel::new(AllReduceAlgo::Ring, &c);
        let hier = AllReduceModel::new(AllReduceAlgo::Hierarchical, &c);
        let n = 256 << 20; // 256 MiB gradient
        assert!(hier.time(n) < flat.time(n));
    }

    #[test]
    fn single_node_hierarchical_uses_only_nvlink() {
        let c = cluster(1);
        let hier = AllReduceModel::new(AllReduceAlgo::Hierarchical, &c);
        let flat = AllReduceModel::new(AllReduceAlgo::Ring, &c);
        let n = 64 << 20;
        assert!((hier.time(n) - flat.time(n)).abs() / flat.time(n) < 1e-9);
    }

    #[test]
    fn time_is_monotone_in_message_size() {
        let m = AllReduceModel::new(AllReduceAlgo::Hierarchical, &cluster(16));
        let mut prev = 0.0;
        for mb in [1u64, 4, 16, 64, 256] {
            let t = m.time(mb << 20);
            assert!(t > prev);
            prev = t;
        }
    }

    #[test]
    fn more_ranks_cost_more_latency() {
        let small = AllReduceModel::new(AllReduceAlgo::Ring, &cluster(4));
        let large = AllReduceModel::new(AllReduceAlgo::Ring, &cluster(512));
        assert!(large.time(1 << 20) > small.time(1 << 20));
    }

    #[test]
    fn contention_grows_with_node_count() {
        // With contention, doubling the nodes must cost visibly more even
        // at a fixed message size; the ideal model barely moves.
        let n = 256 << 20;
        let t = |nodes: usize, step: f64, cong: f64| {
            AllReduceModel::with_contention(
                AllReduceAlgo::Hierarchical,
                &cluster(nodes),
                step,
                cong,
            )
            .time(n)
        };
        let ideal_growth = t(512, 0.0, 0.0) / t(64, 0.0, 0.0);
        let contended_growth = t(512, 4e-4, 0.1) / t(64, 4e-4, 0.1);
        assert!(contended_growth > ideal_growth * 1.5);
        // Single-node collectives are unaffected by contention knobs.
        let mut c1 = cluster(1);
        c1.node.gpus_per_node = 4;
        let a = AllReduceModel::new(AllReduceAlgo::Ring, &c1).time(n);
        let b = AllReduceModel::with_contention(AllReduceAlgo::Ring, &c1, 4e-4, 0.2).time(n);
        assert!((a - b).abs() < 1e-12);
    }
}

//! Collective-communication cost models for the KARMA reproduction.
//!
//! The paper's distributed experiments rest on two communication patterns:
//!
//! * a plain synchronous **AllReduce** of the full gradient (what the
//!   original Megatron-LM hybrid uses once per iteration), and
//! * KARMA's **phased gradient exchange** (Sec. III-G stage 4): gradients are
//!   exchanged block-by-block as blocks finish their backward pass, adopting
//!   the layer-grouping model of Shi et al. (MG-WFBP, paper ref \[36\]), so
//!   communication overlaps the remaining backward computation and the
//!   CPU-side weight updates.
//!
//! NCCL/MPI on InfiniBand is substituted by α–β analytic models over
//! [`karma_hw::LinkSpec`]s — the paper's own scaling analysis is expressible
//! entirely in these terms, and `karma-runtime` provides a *real*
//! shared-memory allreduce for execution-level validation.
//!
//! **Workspace position:** depends only on `karma-hw` for link/cluster
//! specs; `karma-dist` layers the distributed pipeline models on top.

pub mod allreduce;
pub mod phased;

pub use allreduce::{AllReduceAlgo, AllReduceModel};
pub use phased::{ExchangeGroup, PhasedExchange};

#[cfg(test)]
mod tests {
    use super::*;
    use karma_hw::ClusterSpec;

    #[test]
    fn public_types_compose() {
        let cluster = ClusterSpec::abci(2);
        let m = AllReduceModel::new(AllReduceAlgo::Ring, &cluster);
        assert!(m.time(1 << 20) > 0.0);
    }
}
